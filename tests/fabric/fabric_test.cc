#include "src/fabric/fabric.h"

#include <gtest/gtest.h>

#include "src/topology/presets.h"

namespace mihn::fabric {
namespace {

using sim::Bandwidth;
using sim::Simulation;
using sim::TimeNs;
using topology::ComponentId;
using topology::ComponentKind;
using topology::LinkId;
using topology::LinkKind;
using topology::LinkSpec;
using topology::Topology;

// A three-node line using non-PCIe links so effective capacity == raw:
//   a --(100 GB/s, 100ns)-- b --(10 GB/s, 50ns)-- c
struct Line {
  Topology topo;
  ComponentId a, b, c;
  LinkId ab, bc;
};

Line MakeLine() {
  Line l;
  l.a = l.topo.AddComponent(ComponentKind::kCpuSocket, "a");
  l.b = l.topo.AddComponent(ComponentKind::kCpuSocket, "b");
  l.c = l.topo.AddComponent(ComponentKind::kCpuSocket, "c");
  l.ab = l.topo.AddLink(l.a, l.b,
                        LinkSpec{LinkKind::kInterSocket, Bandwidth::GBps(100), TimeNs::Nanos(100)});
  l.bc = l.topo.AddLink(l.b, l.c,
                        LinkSpec{LinkKind::kInterSocket, Bandwidth::GBps(10), TimeNs::Nanos(50)});
  return l;
}

topology::Path RoutedPath(Fabric& fabric, ComponentId src, ComponentId dst) {
  auto path = fabric.Route(src, dst);
  EXPECT_TRUE(path.has_value());
  return *path;
}

TEST(FabricTest, ElasticFlowTakesBottleneck) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  FlowSpec spec;
  spec.path = RoutedPath(fabric, line.a, line.c);
  const FlowId id = fabric.StartFlow(spec);
  ASSERT_NE(id, kInvalidFlow);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(id).ToGBps(), 10.0);
}

TEST(FabricTest, TwoElasticFlowsSplitBottleneck) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  FlowSpec spec;
  spec.path = RoutedPath(fabric, line.a, line.c);
  const FlowId f1 = fabric.StartFlow(spec);
  const FlowId f2 = fabric.StartFlow(spec);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(f1).ToGBps(), 5.0);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(f2).ToGBps(), 5.0);
}

TEST(FabricTest, DemandCappedFlowReleasesShare) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  FlowSpec small;
  small.path = RoutedPath(fabric, line.a, line.c);
  small.demand = Bandwidth::GBps(2);
  FlowSpec big;
  big.path = small.path;
  const FlowId fs = fabric.StartFlow(small);
  const FlowId fb = fabric.StartFlow(big);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(fs).ToGBps(), 2.0);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(fb).ToGBps(), 8.0);
}

TEST(FabricTest, StopFlowRestoresBandwidth) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  FlowSpec spec;
  spec.path = RoutedPath(fabric, line.a, line.c);
  const FlowId f1 = fabric.StartFlow(spec);
  const FlowId f2 = fabric.StartFlow(spec);
  fabric.StopFlow(f1);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(f2).ToGBps(), 10.0);
  EXPECT_EQ(fabric.ActiveFlows().size(), 1u);
  // Stopping again is a no-op.
  fabric.StopFlow(f1);
  EXPECT_EQ(fabric.ActiveFlows().size(), 1u);
}

TEST(FabricTest, SetFlowLimitCapsRate) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  FlowSpec spec;
  spec.path = RoutedPath(fabric, line.a, line.c);
  const FlowId id = fabric.StartFlow(spec);
  fabric.SetFlowLimit(id, Bandwidth::GBps(3));
  EXPECT_DOUBLE_EQ(fabric.FlowRate(id).ToGBps(), 3.0);
  fabric.SetFlowLimit(id, Bandwidth::GBps(1000));
  EXPECT_DOUBLE_EQ(fabric.FlowRate(id).ToGBps(), 10.0);
}

TEST(FabricTest, SetFlowWeightChangesShares) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  FlowSpec spec;
  spec.path = RoutedPath(fabric, line.a, line.c);
  const FlowId f1 = fabric.StartFlow(spec);
  const FlowId f2 = fabric.StartFlow(spec);
  fabric.SetFlowWeight(f1, 4.0);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(f1).ToGBps(), 8.0);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(f2).ToGBps(), 2.0);
}

TEST(FabricTest, SetFlowDemandReshapes) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  FlowSpec spec;
  spec.path = RoutedPath(fabric, line.a, line.c);
  const FlowId id = fabric.StartFlow(spec);
  fabric.SetFlowDemand(id, Bandwidth::GBps(4));
  EXPECT_DOUBLE_EQ(fabric.FlowRate(id).ToGBps(), 4.0);
}

TEST(FabricTest, EmptyPathRejected) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  EXPECT_EQ(fabric.StartFlow(FlowSpec{}), kInvalidFlow);
}

TEST(FabricTest, TransferCompletesAtFluidTimePlusLatency) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  TransferSpec spec;
  spec.flow.path = RoutedPath(fabric, line.a, line.c);
  spec.bytes = 10'000'000'000LL;  // 10 GB at 10 GB/s = 1 s of fluid time.
  TimeNs delivered = TimeNs::Zero();
  TransferResult result;
  spec.on_complete = [&](const TransferResult& r) {
    delivered = sim.Now();
    result = r;
  };
  fabric.StartTransfer(std::move(spec));
  sim.Run();
  ASSERT_GT(delivered.nanos(), 0);
  // Fluid drain exactly 1 s; path latency is 150 ns base, fully utilized so
  // inflated up to the cap (20x = 3 us). Delivery within [1s, 1s + 5us].
  EXPECT_GE(delivered, TimeNs::Seconds(1));
  EXPECT_LE(delivered, TimeNs::Seconds(1) + TimeNs::Micros(5));
  EXPECT_EQ(result.bytes, 10'000'000'000LL);
  EXPECT_EQ(result.start, TimeNs::Zero());
  EXPECT_EQ(result.end, delivered);
  EXPECT_NEAR(result.AverageRate().ToGBps(), 10.0, 0.1);
}

TEST(FabricTest, TransferSlowsWhenCompetitorJoins) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  TransferSpec spec;
  spec.flow.path = RoutedPath(fabric, line.a, line.c);
  spec.bytes = 10'000'000'000LL;
  TimeNs delivered = TimeNs::Zero();
  spec.on_complete = [&](const TransferResult&) { delivered = sim.Now(); };
  fabric.StartTransfer(std::move(spec));
  // At t=0.5s, start a competing elastic flow: remaining 5 GB drain at
  // 5 GB/s -> finishes ~1.5s.
  sim.ScheduleAt(TimeNs::Millis(500), [&] {
    FlowSpec bg;
    bg.path = RoutedPath(fabric, line.a, line.c);
    fabric.StartFlow(bg);
  });
  sim.Run();
  EXPECT_GE(delivered, TimeNs::Millis(1499));
  EXPECT_LE(delivered, TimeNs::Millis(1501));
}

TEST(FabricTest, ZeroByteTransferCompletesImmediately) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  TransferSpec spec;
  spec.flow.path = RoutedPath(fabric, line.a, line.c);
  spec.bytes = 0;
  bool done = false;
  spec.on_complete = [&](const TransferResult& r) {
    done = true;
    EXPECT_EQ(r.bytes, 0);
  };
  EXPECT_EQ(fabric.StartTransfer(std::move(spec)), kInvalidFlow);
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(FabricTest, StoppedTransferNeverCompletes) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  TransferSpec spec;
  spec.flow.path = RoutedPath(fabric, line.a, line.c);
  spec.bytes = 10'000'000'000LL;
  bool done = false;
  spec.on_complete = [&](const TransferResult&) { done = true; };
  const FlowId id = fabric.StartTransfer(std::move(spec));
  sim.ScheduleAt(TimeNs::Millis(100), [&] { fabric.StopFlow(id); });
  sim.Run();
  EXPECT_FALSE(done);
}

TEST(FabricTest, CountersAccrueBytesPerTenant) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  FlowSpec spec;
  spec.path = RoutedPath(fabric, line.a, line.c);
  spec.tenant = 7;
  fabric.StartFlow(spec);
  sim.RunFor(TimeNs::Seconds(1));
  const auto snap = fabric.Snapshot(spec.path.hops[1]);
  EXPECT_NEAR(snap.bytes_total, 10e9, 1e6);
  ASSERT_TRUE(snap.bytes_by_tenant.contains(7));
  EXPECT_NEAR(snap.bytes_by_tenant.at(7), 10e9, 1e6);
  EXPECT_NEAR(snap.bytes_by_class[static_cast<size_t>(TrafficClass::kData)], 10e9, 1e6);
  EXPECT_NEAR(snap.rate_by_tenant_bps.at(7), 10e9, 1.0);
}

TEST(FabricTest, FlowInfoReportsProgress) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  TransferSpec spec;
  spec.flow.path = RoutedPath(fabric, line.a, line.c);
  spec.flow.tenant = 3;
  spec.bytes = 10'000'000'000LL;
  const FlowId id = fabric.StartTransfer(std::move(spec));
  sim.RunFor(TimeNs::Millis(500));
  const auto info = fabric.GetFlowInfo(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->tenant, 3);
  EXPECT_NEAR(static_cast<double>(info->bytes_moved), 5e9, 1e7);
  EXPECT_NEAR(static_cast<double>(info->bytes_remaining), 5e9, 1e7);
  EXPECT_DOUBLE_EQ(info->rate.ToGBps(), 10.0);
}

TEST(FabricTest, UnknownFlowQueries) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  EXPECT_FALSE(fabric.GetFlowInfo(99).has_value());
  EXPECT_TRUE(fabric.FlowRate(99).IsZero());
  fabric.SetFlowLimit(99, Bandwidth::GBps(1));  // Must not crash.
}

TEST(FabricTest, ProbeLatencyUnloadedEqualsBase) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  const auto path = RoutedPath(fabric, line.a, line.c);
  EXPECT_EQ(fabric.ProbePathLatency(path), TimeNs::Nanos(150));
}

TEST(FabricTest, ProbeLatencyInflatesUnderLoad) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  const auto path = RoutedPath(fabric, line.a, line.c);
  const TimeNs unloaded = fabric.ProbePathLatency(path);
  FlowSpec spec;
  spec.path = path;
  fabric.StartFlow(spec);  // Saturates the bc link.
  const TimeNs loaded = fabric.ProbePathLatency(path);
  EXPECT_GT(loaded, unloaded * 2);
  // Capped at max_latency_inflation per hop.
  EXPECT_LE(loaded, Scale(unloaded, fabric.config().max_latency_inflation));
}

TEST(FabricTest, PartialLoadInflationIsModerate) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  const auto path = RoutedPath(fabric, line.a, line.c);
  FlowSpec spec;
  spec.path = path;
  spec.demand = Bandwidth::GBps(5);  // 50% of bottleneck, 5% of ab.
  fabric.StartFlow(spec);
  // bc at rho=0.5 -> inflation 2x => 100ns. ab at rho=0.05 -> ~105ns.
  const TimeNs loaded = fabric.ProbePathLatency(path);
  EXPECT_GT(loaded, TimeNs::Nanos(150));
  EXPECT_LT(loaded, TimeNs::Nanos(260));
}

TEST(FabricTest, PacketDeliveryAndCounters) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  PacketSpec pkt;
  pkt.path = RoutedPath(fabric, line.a, line.c);
  pkt.bytes = 1000;
  pkt.tenant = 2;
  bool delivered = false;
  TimeNs seen = TimeNs::Zero();
  pkt.on_delivered = [&](TimeNs lat) {
    delivered = true;
    seen = lat;
  };
  const TimeNs predicted = fabric.SendPacket(std::move(pkt));
  // 150ns base + serialization 1000B at 100GB/s (10ns) + at 10GB/s (100ns).
  EXPECT_EQ(predicted, TimeNs::Nanos(260));
  sim.Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(seen, predicted);
  EXPECT_EQ(sim.Now(), predicted);
  const auto snap = fabric.Snapshot(topology::DirectedLink{line.bc, true});
  EXPECT_EQ(snap.packets, 1u);
  EXPECT_DOUBLE_EQ(snap.bytes_total, 1000.0);
  EXPECT_DOUBLE_EQ(snap.bytes_by_tenant.at(2), 1000.0);
  EXPECT_DOUBLE_EQ(snap.bytes_by_class[static_cast<size_t>(TrafficClass::kProbe)], 1000.0);
}

TEST(FabricTest, FaultDegradesCapacityAndRate) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  FlowSpec spec;
  spec.path = RoutedPath(fabric, line.a, line.c);
  const FlowId id = fabric.StartFlow(spec);
  fabric.InjectLinkFault(line.bc, LinkFault{0.5, TimeNs::Zero()});
  EXPECT_DOUBLE_EQ(fabric.FlowRate(id).ToGBps(), 5.0);
  EXPECT_TRUE(fabric.GetLinkFault(line.bc).has_value());
  fabric.ClearLinkFault(line.bc);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(id).ToGBps(), 10.0);
  EXPECT_FALSE(fabric.GetLinkFault(line.bc).has_value());
}

TEST(FabricTest, FaultAddsLatencySilently) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  const auto path = RoutedPath(fabric, line.a, line.c);
  fabric.InjectLinkFault(line.ab, LinkFault{1.0, TimeNs::Micros(1)});
  EXPECT_EQ(fabric.ProbePathLatency(path), TimeNs::Nanos(150) + TimeNs::Micros(1));
}

TEST(FabricTest, DeadLinkZeroesFlows) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  FlowSpec spec;
  spec.path = RoutedPath(fabric, line.a, line.c);
  const FlowId id = fabric.StartFlow(spec);
  fabric.InjectLinkFault(line.bc, LinkFault{0.0, TimeNs::Zero()});
  EXPECT_TRUE(fabric.FlowRate(id).IsZero());
}

TEST(FabricTest, UtilizationAndEffectiveCapacity) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  FlowSpec spec;
  spec.path = RoutedPath(fabric, line.a, line.c);
  spec.demand = Bandwidth::GBps(5);
  fabric.StartFlow(spec);
  const topology::DirectedLink bottleneck = spec.path.hops[1];
  EXPECT_DOUBLE_EQ(fabric.EffectiveCapacity(bottleneck).ToGBps(), 10.0);
  EXPECT_DOUBLE_EQ(fabric.Utilization(bottleneck), 0.5);
  // Reverse direction is idle (full duplex).
  const topology::DirectedLink reverse{bottleneck.link, !bottleneck.forward};
  EXPECT_DOUBLE_EQ(fabric.Utilization(reverse), 0.0);
}

TEST(FabricTest, FullDuplexDirectionsIndependent) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  FlowSpec fwd;
  fwd.path = RoutedPath(fabric, line.a, line.c);
  FlowSpec rev;
  rev.path = RoutedPath(fabric, line.c, line.a);
  const FlowId f1 = fabric.StartFlow(fwd);
  const FlowId f2 = fabric.StartFlow(rev);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(f1).ToGBps(), 10.0);
  EXPECT_DOUBLE_EQ(fabric.FlowRate(f2).ToGBps(), 10.0);
}

TEST(FabricTest, PcieCapacityFactorApplied) {
  Simulation sim;
  Topology topo;
  const ComponentId rp = topo.AddComponent(ComponentKind::kPcieRootPort, "rp");
  const ComponentId nic = topo.AddComponent(ComponentKind::kNic, "nic");
  const LinkId l = topo.AddLink(rp, nic, LinkKind::kPcieRootLink);
  FabricConfig config;
  Fabric fabric(sim, topo, config);
  const double raw = topology::DefaultLinkSpec(LinkKind::kPcieRootLink).capacity.bytes_per_sec();
  const double expect = raw * config.PcieCapacityFactor();
  EXPECT_NEAR(fabric.EffectiveCapacity({l, true}).bytes_per_sec(), expect, 1.0);
  // Shrinking MPS shrinks effective capacity.
  config.max_payload_bytes = 64;
  fabric.SetConfig(config);
  EXPECT_LT(fabric.EffectiveCapacity({l, true}).bytes_per_sec(), expect);
}

TEST(FabricTest, IommuAddsPcieLatency) {
  Simulation sim;
  Topology topo;
  const ComponentId rp = topo.AddComponent(ComponentKind::kPcieRootPort, "rp");
  const ComponentId nic = topo.AddComponent(ComponentKind::kNic, "nic");
  topo.AddLink(rp, nic, LinkKind::kPcieRootLink);
  Fabric fabric(sim, topo);
  auto path = fabric.Route(nic, rp);
  ASSERT_TRUE(path.has_value());
  const TimeNs before = fabric.ProbePathLatency(*path);
  FabricConfig config;
  config.iommu_enabled = true;
  fabric.SetConfig(config);
  EXPECT_EQ(fabric.ProbePathLatency(*path), before + config.iommu_latency);
}

TEST(FabricTest, InterruptModerationDelaysPackets) {
  Simulation sim;
  const Line line = MakeLine();
  FabricConfig config;
  config.interrupt_moderation = TimeNs::Micros(10);
  Fabric fabric(sim, line.topo, config);
  PacketSpec pkt;
  pkt.path = RoutedPath(fabric, line.a, line.c);
  pkt.bytes = 0;
  const TimeNs lat = fabric.SendPacket(std::move(pkt));
  EXPECT_EQ(lat, TimeNs::Nanos(150) + TimeNs::Micros(10));
}

TEST(FabricTest, DeterministicAcrossRuns) {
  auto run = [] {
    Simulation sim(42);
    topology::Server server = topology::CommodityTwoSocket();
    Fabric fabric(sim, server.topo);
    FlowSpec spec;
    spec.path = *fabric.Route(server.gpus[0], server.dimms[0]);
    fabric.StartFlow(spec);
    TransferSpec t;
    t.flow.path = *fabric.Route(server.nics[0], server.sockets[0]);
    t.flow.ddio_write = true;
    t.bytes = 1'000'000'000;
    fabric.StartTransfer(std::move(t));
    sim.RunFor(TimeNs::Millis(100));
    double sum = 0;
    for (auto& s : fabric.SnapshotAll()) {
      sum += s.bytes_total;
    }
    return sum;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(FabricTest, RecomputeCountAdvances) {
  Simulation sim;
  const Line line = MakeLine();
  Fabric fabric(sim, line.topo);
  const uint64_t before = fabric.recompute_count();
  FlowSpec spec;
  spec.path = RoutedPath(fabric, line.a, line.c);
  const FlowId id = fabric.StartFlow(spec);
  // Mutations are coalesced: nothing is solved until a read (or the end of
  // the timestamp) forces it.
  EXPECT_EQ(fabric.recompute_count(), before);
  EXPECT_EQ(fabric.mutation_count(), 1u);
  fabric.FlowRate(id);  // Flush point.
  EXPECT_EQ(fabric.recompute_count(), before + 1);
  fabric.StopFlow(id);
  fabric.FlowRate(id);
  EXPECT_EQ(fabric.recompute_count(), before + 2);
  EXPECT_EQ(fabric.mutation_count(), 2u);
}

}  // namespace
}  // namespace mihn::fabric
