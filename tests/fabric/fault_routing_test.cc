// Fault-aware routing: Fabric::Route must exclude dead links, prefer
// fully-healthy paths over degraded ones, and — via the router's fault
// epoch — stop serving stale cached paths the moment a fault is injected
// or cleared.

#include <gtest/gtest.h>

#include "src/fabric/fabric.h"
#include "src/topology/presets.h"
#include "src/workload/sources.h"

namespace mihn::fabric {
namespace {

using sim::Bandwidth;
using sim::Simulation;
using sim::TimeNs;
using topology::ComponentId;
using topology::ComponentKind;
using topology::LinkId;
using topology::LinkKind;
using topology::LinkSpec;
using topology::Topology;

// A dual-ported NIC behind two independent PCIe switches:
//
//   socket -- rp0 -- sw0 --+
//      |                   nic
//      +--- rp1 -- sw1 ----+
//
// Killing one switch uplink must re-route socket<->nic traffic through
// the other port.
struct DualPorted {
  Topology topo;
  ComponentId socket, rp0, sw0, rp1, sw1, nic;
  LinkId up0, up1, down0, down1;
};

DualPorted MakeDualPorted() {
  DualPorted d;
  d.socket = d.topo.AddComponent(ComponentKind::kCpuSocket, "s0");
  d.rp0 = d.topo.AddComponent(ComponentKind::kPcieRootPort, "s0.rp0", d.socket);
  d.sw0 = d.topo.AddComponent(ComponentKind::kPcieSwitch, "s0.rp0.sw0", d.socket);
  d.rp1 = d.topo.AddComponent(ComponentKind::kPcieRootPort, "s0.rp1", d.socket);
  d.sw1 = d.topo.AddComponent(ComponentKind::kPcieSwitch, "s0.rp1.sw0", d.socket);
  d.nic = d.topo.AddComponent(ComponentKind::kNic, "nic0", d.socket);
  d.topo.AddLink(d.socket, d.rp0, LinkKind::kIntraSocket);
  d.up0 = d.topo.AddLink(d.rp0, d.sw0, LinkKind::kPcieSwitchUp);
  d.down0 = d.topo.AddLink(d.sw0, d.nic, LinkKind::kPcieSwitchDown);
  d.topo.AddLink(d.socket, d.rp1, LinkKind::kIntraSocket);
  d.up1 = d.topo.AddLink(d.rp1, d.sw1, LinkKind::kPcieSwitchUp);
  d.down1 = d.topo.AddLink(d.sw1, d.nic, LinkKind::kPcieSwitchDown);
  return d;
}

TEST(FaultRoutingTest, RouteExcludesDeadLink) {
  Simulation sim;
  const DualPorted d = MakeDualPorted();
  Fabric fabric(sim, d.topo);

  const auto before = fabric.Route(d.nic, d.socket);
  ASSERT_TRUE(before.has_value());

  // Kill whichever uplink the route uses; the other port must take over.
  const LinkId used = before->Uses(d.up0) ? d.up0 : d.up1;
  const LinkId other = used == d.up0 ? d.up1 : d.up0;
  ASSERT_TRUE(before->Uses(used));
  fabric.InjectLinkFault(used, LinkFault{.capacity_factor = 0.0});

  const auto after = fabric.Route(d.nic, d.socket);
  ASSERT_TRUE(after.has_value());
  EXPECT_FALSE(after->Uses(used));
  EXPECT_TRUE(after->Uses(other));
}

TEST(FaultRoutingTest, ClearRestoresOriginalRouteNotTheDetour) {
  Simulation sim;
  const DualPorted d = MakeDualPorted();
  Fabric fabric(sim, d.topo);

  const auto original = fabric.Route(d.nic, d.socket);
  ASSERT_TRUE(original.has_value());
  const LinkId used = original->Uses(d.up0) ? d.up0 : d.up1;

  fabric.InjectLinkFault(used, LinkFault{.capacity_factor = 0.0});
  const auto detour = fabric.Route(d.nic, d.socket);
  ASSERT_TRUE(detour.has_value());
  EXPECT_NE(*detour, *original);

  // PR-4 regression: the route memo must be invalidated by the fault
  // epoch, not only by topology edits — after the clear we must get the
  // original path back, not the cached detour.
  fabric.ClearLinkFault(used);
  const auto restored = fabric.Route(d.nic, d.socket);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, *original);
  EXPECT_NE(*restored, *detour);
}

TEST(FaultRoutingTest, DegradedLinkAvoidedWhenHealthyAlternativeExists) {
  Simulation sim;
  const DualPorted d = MakeDualPorted();
  Fabric fabric(sim, d.topo);

  const auto original = fabric.Route(d.socket, d.nic);
  ASSERT_TRUE(original.has_value());
  const LinkId used = original->Uses(d.up0) ? d.up0 : d.up1;

  // A degraded (but alive) link: routing prefers the fully-healthy port.
  fabric.InjectLinkFault(used, LinkFault{.capacity_factor = 0.25});
  const auto rerouted = fabric.Route(d.socket, d.nic);
  ASSERT_TRUE(rerouted.has_value());
  EXPECT_FALSE(rerouted->Uses(used));

  // When every path is degraded, routing still returns one.
  const LinkId other = used == d.up0 ? d.up1 : d.up0;
  fabric.InjectLinkFault(other, LinkFault{.capacity_factor = 0.25});
  const auto degraded = fabric.Route(d.socket, d.nic);
  ASSERT_TRUE(degraded.has_value());
}

TEST(FaultRoutingTest, UnreachableWhenEveryPathCrossesADeadLink) {
  Simulation sim;
  const DualPorted d = MakeDualPorted();
  Fabric fabric(sim, d.topo);

  fabric.InjectLinkFault(d.up0, LinkFault{.capacity_factor = 0.0});
  fabric.InjectLinkFault(d.up1, LinkFault{.capacity_factor = 0.0});
  EXPECT_FALSE(fabric.Route(d.socket, d.nic).has_value());

  fabric.ClearLinkFault(d.up1);
  EXPECT_TRUE(fabric.Route(d.socket, d.nic).has_value());
}

TEST(FaultRoutingTest, RouteEpochAdvancesOnEffectiveChangeOnly) {
  Simulation sim;
  const DualPorted d = MakeDualPorted();
  Fabric fabric(sim, d.topo);

  const uint64_t start = fabric.route_epoch();
  fabric.InjectLinkFault(d.up0, LinkFault{.capacity_factor = 0.0});
  const uint64_t after_inject = fabric.route_epoch();
  EXPECT_GT(after_inject, start);

  // Re-injecting the same fault is a routing no-op.
  fabric.InjectLinkFault(d.up0, LinkFault{.capacity_factor = 0.0});
  EXPECT_EQ(fabric.route_epoch(), after_inject);

  // A pure-latency fault flips the link to degraded: epoch moves.
  fabric.InjectLinkFault(d.up1, LinkFault{.extra_latency = TimeNs::Micros(5)});
  const uint64_t after_latency = fabric.route_epoch();
  EXPECT_GT(after_latency, after_inject);

  fabric.ClearLinkFault(d.up0);
  fabric.ClearLinkFault(d.up1);
  EXPECT_GT(fabric.route_epoch(), after_latency);
}

// The issue's headline scenario: a flow through a PCIe switch uplink, the
// uplink dies, and a restart re-routes the flow onto the surviving port.
TEST(FaultRoutingTest, StreamReroutesAroundKilledSwitchUplink) {
  Simulation sim;
  const DualPorted d = MakeDualPorted();
  Fabric fabric(sim, d.topo);

  workload::StreamSource::Config config;
  config.src = d.nic;
  config.dst = d.socket;
  config.demand = Bandwidth::GBps(8);
  workload::StreamSource stream(fabric, config);
  stream.Start();
  sim.RunFor(TimeNs::Millis(1));

  const auto before = fabric.GetFlowInfo(stream.flow());
  ASSERT_TRUE(before.has_value());
  ASSERT_NE(before->path, nullptr);
  const topology::Path original = *before->path;
  const LinkId used = original.Uses(d.up0) ? d.up0 : d.up1;
  EXPECT_GT(stream.AchievedRate().ToGBps(), 0.0);

  fabric.InjectLinkFault(used, LinkFault{.capacity_factor = 0.0});
  sim.RunFor(TimeNs::Millis(1));
  EXPECT_DOUBLE_EQ(stream.AchievedRate().ToGBps(), 0.0);

  stream.Stop();
  stream.Start();
  sim.RunFor(TimeNs::Millis(1));

  const auto after = fabric.GetFlowInfo(stream.flow());
  ASSERT_TRUE(after.has_value());
  ASSERT_NE(after->path, nullptr);
  EXPECT_FALSE(after->path->Uses(used));
  EXPECT_GT(stream.AchievedRate().ToGBps(), 0.0);
}

}  // namespace
}  // namespace mihn::fabric
