// Mutation-trace differential tests for the MaxMinSolver delta engine.
//
// The retained delta path (UpdateCapacity / UpdateFlowDemand /
// UpdateFlowWeight / AddFlowRetained / RemoveFlowRetained + SolveDelta) must
// produce rates bit-identical to a fresh full solve — and therefore to
// SolveMaxMinReference — after EVERY mutation step, whether it splices,sews
// a resumed suffix, or falls back to the full path. These suites drive long
// random mutation traces against a shadow instance that is re-solved from
// scratch by the reference oracle at each step.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/fabric/fabric.h"
#include "src/fabric/max_min.h"
#include "src/sim/random.h"
#include "src/topology/presets.h"

namespace mihn::fabric {
namespace {

void ExpectIdentical(const std::vector<double>& got, const std::vector<double>& want,
                     uint64_t seed, size_t step) {
  ASSERT_EQ(got.size(), want.size()) << "seed " << seed << " step " << step;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "flow " << i << " seed " << seed << " step " << step
                               << " (diff " << std::abs(got[i] - want[i]) << ")";
  }
}

// Shadow copy of the retained problem: slot-for-slot mirror of the solver's
// rate vector (tombstoned flows stay as demand-0 entries, exactly the
// reference's dead-flow rule).
struct Shadow {
  std::vector<MaxMinFlow> flows;
  std::vector<double> caps;
};

double RandomDemand(sim::Rng& rng) {
  if (rng.Bernoulli(0.3)) {
    return kUnlimitedDemand;
  }
  if (rng.Bernoulli(0.07)) {
    return rng.Uniform(0.0, 1e-6);  // Dust demand, may be dead-adjacent.
  }
  return rng.Uniform(0.0, 500.0);
}

Shadow MakeShadow(sim::Rng& rng, int num_links, int num_flows) {
  Shadow sh;
  sh.caps.resize(static_cast<size_t>(num_links));
  for (auto& c : sh.caps) {
    c = rng.Bernoulli(0.04) ? 0.0 : rng.Uniform(1.0, 1000.0);
  }
  sh.flows.resize(static_cast<size_t>(num_flows));
  for (auto& f : sh.flows) {
    f.weight = rng.Bernoulli(0.1) ? rng.Uniform(1e-10, 1e-6) : rng.Uniform(0.1, 4.0);
    f.demand = RandomDemand(rng);
    const int nl = static_cast<int>(rng.UniformInt(1, std::min(num_links, 5)));
    for (int i = 0; i < nl; ++i) {
      f.links.push_back(static_cast<int32_t>(rng.UniformInt(0, num_links - 1)));
    }
  }
  return sh;
}

void PrimeSolver(MaxMinSolver& solver, const Shadow& sh) {
  solver.Begin(sh.caps.size());
  for (size_t l = 0; l < sh.caps.size(); ++l) {
    solver.SetCapacity(static_cast<int32_t>(l), sh.caps[l]);
  }
  for (const MaxMinFlow& f : sh.flows) {
    solver.AddFlow(f.weight, f.demand, f.links.data(), f.links.size());
  }
  solver.Commit();
}

// Applies one random mutation to both worlds. Returns false if the step was
// a no-op (nothing to mutate).
bool MutateOnce(sim::Rng& rng, MaxMinSolver& solver, Shadow& sh) {
  const int kind = static_cast<int>(rng.UniformInt(0, 9));
  switch (kind) {
    case 0:
    case 1:
    case 2: {  // Demand nudge — the hot churn mutation.
      const auto f = static_cast<int32_t>(rng.UniformInt(0, static_cast<int>(sh.flows.size()) - 1));
      const double d = RandomDemand(rng);
      solver.UpdateFlowDemand(f, d);
      sh.flows[static_cast<size_t>(f)].demand = d;
      return true;
    }
    case 3:
    case 4: {  // Weight change.
      const auto f = static_cast<int32_t>(rng.UniformInt(0, static_cast<int>(sh.flows.size()) - 1));
      const double w = rng.Uniform(0.1, 4.0);
      solver.UpdateFlowWeight(f, w);
      sh.flows[static_cast<size_t>(f)].weight = w;
      return true;
    }
    case 5:
    case 6: {  // Capacity nudge (occasionally to/from zero: the full path).
      const auto l = static_cast<int32_t>(rng.UniformInt(0, static_cast<int>(sh.caps.size()) - 1));
      const double c = rng.Bernoulli(0.06) ? 0.0 : rng.Uniform(1.0, 1000.0);
      solver.UpdateCapacity(l, c);
      sh.caps[static_cast<size_t>(l)] = c;
      return true;
    }
    case 7: {  // Tombstone.
      const auto f = static_cast<int32_t>(rng.UniformInt(0, static_cast<int>(sh.flows.size()) - 1));
      solver.RemoveFlowRetained(f);
      sh.flows[static_cast<size_t>(f)].demand = 0.0;
      return true;
    }
    default: {  // Add a flow.
      MaxMinFlow f;
      f.weight = rng.Uniform(0.1, 4.0);
      f.demand = RandomDemand(rng);
      const int nl = static_cast<int>(rng.UniformInt(1, std::min<int>(5, static_cast<int>(sh.caps.size()))));
      for (int i = 0; i < nl; ++i) {
        f.links.push_back(static_cast<int32_t>(rng.UniformInt(0, static_cast<int>(sh.caps.size()) - 1)));
      }
      const int32_t slot = solver.AddFlowRetained(f.weight, f.demand, f.links.data(), f.links.size());
      EXPECT_EQ(static_cast<size_t>(slot), sh.flows.size());
      sh.flows.push_back(std::move(f));
      return true;
    }
  }
}

TEST(MaxMinDeltaDifferentialTest, SingleMutationStepsMatchReference) {
  MaxMinSolver solver;  // Persistent across traces: exercises re-priming.
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    sim::Rng rng(seed * 2654435761u);
    Shadow sh = MakeShadow(rng, static_cast<int>(rng.UniformInt(2, 20)),
                           static_cast<int>(rng.UniformInt(2, 50)));
    PrimeSolver(solver, sh);
    ExpectIdentical(solver.rates(), SolveMaxMinReference(sh.flows, sh.caps), seed, 0);
    for (size_t step = 1; step <= 40; ++step) {
      MutateOnce(rng, solver, sh);
      const std::vector<double>& got = solver.SolveDelta();
      ExpectIdentical(got, SolveMaxMinReference(sh.flows, sh.caps), seed, step);
      if (HasFailure()) {
        return;
      }
    }
  }
}

TEST(MaxMinDeltaDifferentialTest, BatchedMutationStepsMatchReference) {
  // Several mutations per solve: the scan must compose dirty sets.
  MaxMinSolver solver;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    sim::Rng rng(seed * 7919 + 13);
    Shadow sh = MakeShadow(rng, static_cast<int>(rng.UniformInt(3, 16)),
                           static_cast<int>(rng.UniformInt(4, 40)));
    PrimeSolver(solver, sh);
    for (size_t step = 1; step <= 15; ++step) {
      const int batch = static_cast<int>(rng.UniformInt(1, 6));
      for (int b = 0; b < batch; ++b) {
        MutateOnce(rng, solver, sh);
      }
      ExpectIdentical(solver.SolveDelta(), SolveMaxMinReference(sh.flows, sh.caps), seed, step);
      if (HasFailure()) {
        return;
      }
    }
  }
}

TEST(MaxMinDeltaDifferentialTest, DeltaPathActuallyEngages) {
  // Large instance, single-flow demand churn: the crossover heuristic must
  // keep this on the delta path (scan + splice/resume), not the full solve.
  MaxMinSolver solver;
  sim::Rng rng(424243);
  Shadow sh = MakeShadow(rng, 64, 2000);
  PrimeSolver(solver, sh);
  uint64_t fallbacks_before = solver.delta_fallbacks();
  size_t engaged = 0;
  for (size_t step = 0; step < 50; ++step) {
    const auto f = static_cast<int32_t>(rng.UniformInt(0, 1999));
    const double d = RandomDemand(rng);
    solver.UpdateFlowDemand(f, d);
    sh.flows[static_cast<size_t>(f)].demand = d;
    const std::vector<double>& got = solver.SolveDelta();
    ExpectIdentical(got, SolveMaxMinReference(sh.flows, sh.caps), 424243, step);
    const auto& st = solver.last_delta_stats();
    if (!st.fallback_full) {
      ++engaged;
      EXPECT_LE(st.dirty_links, 5u) << "single-flow churn dirties at most its own links";
    }
    if (HasFailure()) {
      return;
    }
  }
  EXPECT_EQ(solver.delta_fallbacks(), fallbacks_before)
      << "demand-only churn must never fall back to the full path";
  EXPECT_EQ(engaged, 50u);
}

TEST(MaxMinDeltaDifferentialTest, NoopDeltaSplicesWithoutResolving) {
  MaxMinSolver solver;
  sim::Rng rng(99);
  Shadow sh = MakeShadow(rng, 8, 20);
  PrimeSolver(solver, sh);
  const std::vector<double> before = solver.rates();
  const uint64_t noops_before = solver.delta_noop_splices();
  ExpectIdentical(solver.SolveDelta(), before, 99, 0);
  EXPECT_EQ(solver.delta_noop_splices(), noops_before + 1);
  EXPECT_TRUE(solver.last_delta_stats().noop_splice);

  // Writing back the identical value is elided entirely.
  solver.UpdateFlowDemand(3, sh.flows[3].demand);
  solver.UpdateCapacity(2, sh.caps[2]);
  ExpectIdentical(solver.SolveDelta(), before, 99, 1);
  EXPECT_EQ(solver.delta_noop_splices(), noops_before + 2);
}

TEST(MaxMinDeltaDifferentialTest, UnprimedMutatorsDegradeToBatch) {
  MaxMinSolver solver;
  solver.Begin(2);
  solver.SetCapacity(0, 100.0);
  solver.SetCapacity(1, 50.0);
  const int32_t a = solver.AddFlowRetained(1.0, kUnlimitedDemand, (const int32_t[]){0}, 1);
  const int32_t b = solver.AddFlowRetained(1.0, kUnlimitedDemand, (const int32_t[]){0, 1}, 2);
  solver.UpdateFlowDemand(a, 30.0);
  const std::vector<double>& rates = solver.SolveDelta();
  std::vector<MaxMinFlow> flows{{1.0, 30.0, {0}}, {1.0, kUnlimitedDemand, {0, 1}}};
  ExpectIdentical(rates, SolveMaxMinReference(flows, {100.0, 50.0}),
                  static_cast<uint64_t>(a + b), 0);
  EXPECT_TRUE(solver.last_delta_stats().fallback_full);
}

// End-to-end: the Fabric's retained diff path (dirty flow worklist +
// SolveDelta) must track the reference oracle bit-for-bit through a chaos
// mutation trace — flow add/remove, demand/weight/limit churn, fault
// inject/clear — reconstructed purely from the fabric's public state. DDIO
// stays off so the allocation is a single max-min instance per step.
TEST(FabricDeltaEquivalenceTest, MutationTraceMatchesReferenceAtEveryStep) {
  sim::Simulation sim(7);
  const topology::Server server = topology::BuildServer(topology::ServerSpec{});
  ASSERT_EQ(server.topo.Validate(), "");
  FabricConfig config;
  config.ddio_enabled = false;
  Fabric fabric(sim, server.topo, config);
  sim::Rng rng(1234);

  std::vector<topology::ComponentId> endpoints;
  for (const topology::Component& c : server.topo.components()) {
    if (topology::IsEndpointKind(c.kind)) {
      endpoints.push_back(c.id);
    }
  }
  ASSERT_GE(endpoints.size(), 2u);
  const auto pick_endpoint = [&] {
    return endpoints[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(endpoints.size()) - 1))];
  };
  const auto pick_link = [&] {
    return server.topo.links()[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(server.topo.links().size()) - 1))].id;
  };

  std::vector<FlowId> live;
  const auto check_against_reference = [&](size_t step) {
    const std::vector<FlowId> ids = fabric.ActiveFlows();
    std::vector<MaxMinFlow> flows;
    flows.reserve(ids.size());
    for (const FlowId id : ids) {
      const std::optional<FlowInfo> info = fabric.GetFlowInfo(id);
      ASSERT_TRUE(info.has_value());
      MaxMinFlow f;
      f.weight = info->weight;
      f.demand = std::min(info->demand.bytes_per_sec(), info->limit.bytes_per_sec());
      for (const topology::DirectedLink& hop : info->path->hops) {
        f.links.push_back(topology::DirectedIndex(hop));
      }
      std::sort(f.links.begin(), f.links.end());
      f.links.erase(std::unique(f.links.begin(), f.links.end()), f.links.end());
      flows.push_back(std::move(f));
    }
    std::vector<double> caps(server.topo.link_count() * 2, 0.0);
    for (const topology::Link& link : server.topo.links()) {
      for (const bool fwd : {true, false}) {
        const topology::DirectedLink dlink{link.id, fwd};
        caps[static_cast<size_t>(topology::DirectedIndex(dlink))] =
            fabric.EffectiveCapacity(dlink).bytes_per_sec();
      }
    }
    const std::vector<double> want = SolveMaxMinReference(flows, caps);
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(fabric.FlowRate(ids[i]).bytes_per_sec(), want[i])
          << "flow " << ids[i] << " step " << step;
    }
  };

  for (size_t step = 0; step < 200; ++step) {
    const int burst = static_cast<int>(rng.UniformInt(1, 4));
    for (int b = 0; b < burst; ++b) {
      const int kind = static_cast<int>(rng.UniformInt(0, 9));
      if (kind <= 2 || live.empty()) {  // Start a flow.
        const topology::ComponentId src = pick_endpoint();
        const topology::ComponentId dst = pick_endpoint();
        if (src == dst) {
          continue;
        }
        const auto path = fabric.Route(src, dst);
        if (!path) {
          continue;
        }
        FlowSpec spec;
        spec.path = *path;
        spec.weight = rng.Uniform(0.5, 4.0);
        spec.demand = rng.Bernoulli(0.4)
                          ? sim::Bandwidth::BytesPerSec(kUnlimitedDemand)
                          : sim::Bandwidth::Gbps(rng.Uniform(0.1, 80.0));
        const FlowId id = fabric.StartFlow(std::move(spec));
        if (id != kInvalidFlow) {
          live.push_back(id);
        }
      } else if (kind <= 4) {  // Demand churn.
        const FlowId id = live[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
        fabric.SetFlowDemand(id, sim::Bandwidth::Gbps(rng.Uniform(0.1, 120.0)));
      } else if (kind == 5) {  // Weight churn.
        const FlowId id = live[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
        fabric.SetFlowWeight(id, rng.Uniform(0.25, 8.0));
      } else if (kind == 6) {  // Limit churn.
        const FlowId id = live[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
        fabric.SetFlowLimit(id, sim::Bandwidth::Gbps(rng.Uniform(0.05, 60.0)));
      } else if (kind == 7) {  // Stop a flow.
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
        fabric.StopFlow(live[at]);
        live.erase(live.begin() + static_cast<ptrdiff_t>(at));
      } else if (kind == 8) {  // Fault injection (degrade, sometimes kill).
        fabric.InjectLinkFault(
            pick_link(), LinkFault{rng.Bernoulli(0.25) ? 0.0 : rng.Uniform(0.2, 0.9),
                                   sim::TimeNs::Zero()});
      } else {  // Fault clear.
        fabric.ClearLinkFault(pick_link());
      }
    }
    check_against_reference(step);
    if (HasFailure()) {
      return;
    }
  }
  // The trace must have actually exercised the machinery: a healthy run
  // carries dozens of concurrent flows and solved once per burst.
  EXPECT_GE(live.size(), 10u);
  EXPECT_GE(fabric.recompute_count(), 100u);
  EXPECT_GE(fabric.mutation_count(), fabric.recompute_count());
}

}  // namespace
}  // namespace mihn::fabric
