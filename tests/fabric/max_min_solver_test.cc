// Differential tests: MaxMinSolver (workspace + active-set engine) must
// reproduce SolveMaxMinReference bit-for-bit. Determinism of the allocator
// is a core invariant of the fabric — the optimised solver is only allowed
// to be faster, never different.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/fabric/max_min.h"
#include "src/sim/random.h"

namespace mihn::fabric {
namespace {

// Exact comparison: the solver is designed round-for-round arithmetic-
// identical to the reference, so even == should hold. Report the instance
// on mismatch.
void ExpectIdentical(const std::vector<double>& got, const std::vector<double>& want,
                     uint64_t seed) {
  ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "flow " << i << " seed " << seed << " (diff "
                               << std::abs(got[i] - want[i]) << ")";
  }
}

struct Instance {
  std::vector<MaxMinFlow> flows;
  std::vector<double> caps;
};

// Random instances spanning the shapes the fabric produces: mixed elastic /
// capped demands, weight spread, duplicate and occasionally invalid link
// references, occasional zero-capacity links, occasional linkless flows.
Instance MakeRandomInstance(uint64_t seed) {
  sim::Rng rng(seed);
  Instance inst;
  const int num_links = static_cast<int>(rng.UniformInt(1, 24));
  const int num_flows = static_cast<int>(rng.UniformInt(1, 60));
  inst.caps.resize(static_cast<size_t>(num_links));
  for (auto& c : inst.caps) {
    c = rng.Bernoulli(0.05) ? 0.0 : rng.Uniform(1.0, 1000.0);
  }
  inst.flows.resize(static_cast<size_t>(num_flows));
  for (auto& f : inst.flows) {
    f.weight = rng.Bernoulli(0.1) ? rng.Uniform(1e-10, 1e-6) : rng.Uniform(0.1, 4.0);
    if (rng.Bernoulli(0.3)) {
      f.demand = kUnlimitedDemand;
    } else if (rng.Bernoulli(0.05)) {
      f.demand = rng.Uniform(0.0, 1e-6);  // Near-dead dust demands.
    } else {
      f.demand = rng.Uniform(0.0, 500.0);
    }
    if (rng.Bernoulli(0.03)) {
      continue;  // Linkless flow: must receive its demand.
    }
    const int nl = static_cast<int>(rng.UniformInt(1, std::min(num_links, 6)));
    for (int i = 0; i < nl; ++i) {
      f.links.push_back(static_cast<int32_t>(rng.UniformInt(0, num_links - 1)));
    }
    if (rng.Bernoulli(0.05)) {
      f.links.push_back(f.links.front());  // Duplicate entry.
    }
    if (rng.Bernoulli(0.03)) {
      f.links.push_back(static_cast<int32_t>(num_links + 3));  // Invalid index.
    }
  }
  return inst;
}

TEST(MaxMinSolverDifferentialTest, MatchesReferenceOn1500RandomInstances) {
  // One persistent solver across all instances: also exercises workspace
  // reuse (a stale-scratch bug would show up as cross-instance bleed).
  MaxMinSolver solver;
  for (uint64_t seed = 1; seed <= 1500; ++seed) {
    const Instance inst = MakeRandomInstance(seed * 2654435761u);
    const std::vector<double> want = SolveMaxMinReference(inst.flows, inst.caps);
    const std::vector<double>& got = solver.Solve(inst.flows, inst.caps);
    ExpectIdentical(got, want, seed);
    if (HasFailure()) {
      return;  // One diverging instance is enough to debug.
    }
  }
}

TEST(MaxMinSolverDifferentialTest, MatchesReferenceOnTieHeavyInstances) {
  // Equal weights and equal demands produce many simultaneous fixings per
  // round — stresses the candidate-gathering path.
  MaxMinSolver solver;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    sim::Rng rng(seed * 7919);
    const int num_links = static_cast<int>(rng.UniformInt(1, 8));
    const int num_flows = static_cast<int>(rng.UniformInt(2, 80));
    std::vector<double> caps(static_cast<size_t>(num_links), 100.0);
    std::vector<MaxMinFlow> flows(static_cast<size_t>(num_flows));
    const double shared_demand = rng.Bernoulli(0.5) ? kUnlimitedDemand : 7.25;
    for (auto& f : flows) {
      f.weight = 1.0;
      f.demand = shared_demand;
      const int nl = static_cast<int>(rng.UniformInt(1, num_links));
      for (int i = 0; i < nl; ++i) {
        f.links.push_back(static_cast<int32_t>(rng.UniformInt(0, num_links - 1)));
      }
    }
    ExpectIdentical(solver.Solve(flows, caps), SolveMaxMinReference(flows, caps), seed);
    if (HasFailure()) {
      return;
    }
  }
}

TEST(MaxMinSolverDifferentialTest, StructuredEdgeCases) {
  MaxMinSolver solver;
  const std::vector<Instance> cases = {
      // Empty.
      {{}, {100.0}},
      // No links at all.
      {{{1.0, 42.0, {}}}, {}},
      // Parking lot.
      {{{1.0, kUnlimitedDemand, {0, 1, 2, 3}},
        {1.0, kUnlimitedDemand, {1, 2, 3}},
        {1.0, kUnlimitedDemand, {2, 3}},
        {1.0, kUnlimitedDemand, {3}}},
       {12.0, 12.0, 12.0, 12.0}},
      // Zero-capacity and invalid links.
      {{{1.0, kUnlimitedDemand, {0, 1}}, {1.0, kUnlimitedDemand, {0}}, {1.0, 5.0, {9}}},
       {100.0, 0.0}},
      // Dust demands below the absolute fixing tolerance.
      {{{1.0, 1e-12, {0}}, {1.0, kUnlimitedDemand, {0}}, {1e-12, 3.0, {0}}}, {50.0}},
      // All flows dead.
      {{{1.0, 0.0, {0}}, {1.0, -3.0, {0}}}, {10.0}},
      // Demands exactly at the waterline of one another.
      {{{1.0, 25.0, {0}}, {1.0, 25.0, {0}}, {2.0, 50.0, {0}}}, {100.0}},
  };
  uint64_t i = 0;
  for (const Instance& inst : cases) {
    ExpectIdentical(solver.Solve(inst.flows, inst.caps),
                    SolveMaxMinReference(inst.flows, inst.caps), i++);
  }
}

TEST(MaxMinSolverTest, BatchApiMatchesOneShot) {
  const Instance inst = MakeRandomInstance(424242);
  MaxMinSolver batch;
  batch.Begin(inst.caps.size());
  for (size_t l = 0; l < inst.caps.size(); ++l) {
    batch.SetCapacity(static_cast<int32_t>(l), inst.caps[l]);
  }
  for (const MaxMinFlow& f : inst.flows) {
    batch.AddFlow(f.weight, f.demand, f.links.data(), f.links.size());
  }
  ExpectIdentical(batch.Commit(), SolveMaxMinReference(inst.flows, inst.caps), 424242);
}

TEST(MaxMinSolverTest, OneShotSolveServesLegacyShapes) {
  // The shape the retired SolveMaxMin free function used to serve: the
  // one-shot Solve() entry is its drop-in replacement.
  MaxMinSolver solver;
  const auto rates = solver.Solve(
      {{1.0, kUnlimitedDemand, {0}}, {1.0, kUnlimitedDemand, {0, 1}}, {1.0, kUnlimitedDemand, {1}}},
      {10.0, 4.0});
  EXPECT_DOUBLE_EQ(rates[1], 2.0);
  EXPECT_DOUBLE_EQ(rates[2], 2.0);
  EXPECT_DOUBLE_EQ(rates[0], 8.0);
}

TEST(MaxMinSolverTest, ReportsFillingRounds) {
  MaxMinSolver solver;
  // Three distinct demand plateaus -> at least two filling rounds.
  solver.Solve({{1.0, 10.0, {0}}, {1.0, 20.0, {0}}, {1.0, kUnlimitedDemand, {0}}}, {100.0});
  EXPECT_GE(solver.last_rounds(), 2u);
}

}  // namespace
}  // namespace mihn::fabric
