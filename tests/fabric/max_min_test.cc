#include "src/fabric/max_min.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/sim/random.h"

namespace mihn::fabric {
namespace {

// Every case solves through one shared MaxMinSolver workspace — the
// supported API (the SolveMaxMin free function is deprecated). Reuse
// across tests also exercises the workspace-reset path: stale state from a
// previous solve would fail the very next case.
std::vector<double> Solve(const std::vector<MaxMinFlow>& flows,
                          const std::vector<double>& capacities) {
  // mihn-check: mutable-ok(workspace reuse across cases is the point of this suite)
  static MaxMinSolver solver;
  return solver.Solve(flows, capacities);
}

TEST(MaxMinTest, EmptyInput) {
  EXPECT_TRUE(Solve({}, {100.0}).empty());
}

TEST(MaxMinTest, SingleFlowTakesWholeLink) {
  const auto rates = Solve({{1.0, kUnlimitedDemand, {0}}}, {100.0});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(MaxMinTest, SingleFlowCappedByDemand) {
  const auto rates = Solve({{1.0, 30.0, {0}}}, {100.0});
  EXPECT_DOUBLE_EQ(rates[0], 30.0);
}

TEST(MaxMinTest, TwoEqualFlowsSplitEvenly) {
  const auto rates = Solve({{1.0, kUnlimitedDemand, {0}}, {1.0, kUnlimitedDemand, {0}}},
                                 {100.0});
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(MaxMinTest, WeightsSplitProportionally) {
  const auto rates =
      Solve({{3.0, kUnlimitedDemand, {0}}, {1.0, kUnlimitedDemand, {0}}}, {100.0});
  EXPECT_DOUBLE_EQ(rates[0], 75.0);
  EXPECT_DOUBLE_EQ(rates[1], 25.0);
}

TEST(MaxMinTest, SmallDemandFlowReleasesShareToOthers) {
  // Classic max-min: demands {10, inf, inf} on a 100 link -> {10, 45, 45}.
  const auto rates = Solve(
      {{1.0, 10.0, {0}}, {1.0, kUnlimitedDemand, {0}}, {1.0, kUnlimitedDemand, {0}}}, {100.0});
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 45.0);
  EXPECT_DOUBLE_EQ(rates[2], 45.0);
}

TEST(MaxMinTest, TextbookTwoLinkExample) {
  // Link 0 cap 10 shared by flows A (link 0) and B (links 0,1);
  // link 1 cap 4 shared by B and C (link 1).
  // B is bottlenecked on link 1 with C: B=C=2; A gets 10-2=8.
  const auto rates = Solve(
      {{1.0, kUnlimitedDemand, {0}}, {1.0, kUnlimitedDemand, {0, 1}}, {1.0, kUnlimitedDemand, {1}}},
      {10.0, 4.0});
  EXPECT_DOUBLE_EQ(rates[1], 2.0);
  EXPECT_DOUBLE_EQ(rates[2], 2.0);
  EXPECT_DOUBLE_EQ(rates[0], 8.0);
}

TEST(MaxMinTest, ZeroCapacityLinkKillsFlow) {
  const auto rates =
      Solve({{1.0, kUnlimitedDemand, {0, 1}}, {1.0, kUnlimitedDemand, {0}}}, {100.0, 0.0});
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 100.0);
}

TEST(MaxMinTest, ZeroDemandFlowGetsNothing) {
  const auto rates =
      Solve({{1.0, 0.0, {0}}, {1.0, kUnlimitedDemand, {0}}}, {100.0});
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 100.0);
}

TEST(MaxMinTest, InvalidLinkIndexKillsFlowSafely) {
  const auto rates = Solve({{1.0, kUnlimitedDemand, {7}}}, {100.0});
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
}

TEST(MaxMinTest, DuplicateLinkEntriesCountOnce) {
  const auto rates = Solve({{1.0, kUnlimitedDemand, {0, 0, 0}}}, {100.0});
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(MaxMinTest, FlowWithNoLinksGetsDemand) {
  const auto rates = Solve({{1.0, 42.0, {}}}, {100.0});
  EXPECT_DOUBLE_EQ(rates[0], 42.0);
}

TEST(MaxMinTest, ParkingLotTopology) {
  // N flows each crossing links {i..N-1}; flow 0 crosses all links.
  // All links capacity 1 per remaining flows... classic parking lot:
  // flows: f_i uses links i..3, caps all 12. Bottleneck: link 3 carries all
  // 4 flows -> everyone gets 3.
  std::vector<MaxMinFlow> flows;
  for (int i = 0; i < 4; ++i) {
    MaxMinFlow f{1.0, kUnlimitedDemand, {}};
    for (int l = i; l < 4; ++l) {
      f.links.push_back(l);
    }
    flows.push_back(f);
  }
  const auto rates = Solve(flows, {12.0, 12.0, 12.0, 12.0});
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(rates[static_cast<size_t>(i)], 3.0, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Property-based sweep: random networks must satisfy the max-min invariants.
// ---------------------------------------------------------------------------

struct RandomCase {
  uint64_t seed;
};

class MaxMinPropertyTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(MaxMinPropertyTest, InvariantsHold) {
  sim::Rng rng(GetParam().seed);
  const int num_links = static_cast<int>(rng.UniformInt(1, 12));
  const int num_flows = static_cast<int>(rng.UniformInt(1, 40));

  std::vector<double> caps(static_cast<size_t>(num_links));
  for (auto& c : caps) {
    c = rng.Uniform(1.0, 1000.0);
  }
  std::vector<MaxMinFlow> flows(static_cast<size_t>(num_flows));
  for (auto& f : flows) {
    f.weight = rng.Uniform(0.1, 4.0);
    f.demand = rng.Bernoulli(0.3) ? kUnlimitedDemand : rng.Uniform(0.0, 500.0);
    const int nl = static_cast<int>(rng.UniformInt(1, num_links));
    for (int i = 0; i < nl; ++i) {
      f.links.push_back(static_cast<int32_t>(rng.UniformInt(0, num_links - 1)));
    }
  }

  const auto rates = Solve(flows, caps);
  ASSERT_EQ(rates.size(), flows.size());

  // Invariant 1: non-negative, demand-capped rates.
  for (size_t i = 0; i < flows.size(); ++i) {
    EXPECT_GE(rates[i], 0.0);
    EXPECT_LE(rates[i], flows[i].demand * (1.0 + 1e-9) + 1e-9);
  }

  // Invariant 2: feasibility on every link.
  std::vector<double> load(caps.size(), 0.0);
  for (size_t i = 0; i < flows.size(); ++i) {
    std::vector<int32_t> links = flows[i].links;
    std::sort(links.begin(), links.end());
    links.erase(std::unique(links.begin(), links.end()), links.end());
    for (const int32_t l : links) {
      load[static_cast<size_t>(l)] += rates[i];
    }
  }
  for (size_t l = 0; l < caps.size(); ++l) {
    EXPECT_LE(load[l], caps[l] * (1.0 + 1e-6) + 1e-6) << "link " << l;
  }

  // Invariant 3 (max-min / work conservation): every flow below its demand
  // must cross a saturated link on which it has (weakly) the largest
  // weight-normalized rate among that link's flows.
  for (size_t i = 0; i < flows.size(); ++i) {
    if (rates[i] >= flows[i].demand * (1.0 - 1e-6)) {
      continue;  // Demand-satisfied.
    }
    bool justified = false;
    for (const int32_t l : flows[i].links) {
      const bool saturated = load[static_cast<size_t>(l)] >= caps[static_cast<size_t>(l)] - 1e-6;
      if (!saturated) {
        continue;
      }
      bool is_max_normalized = true;
      for (size_t j = 0; j < flows.size(); ++j) {
        if (j == i) {
          continue;
        }
        const bool shares =
            std::find(flows[j].links.begin(), flows[j].links.end(), l) != flows[j].links.end();
        if (shares &&
            rates[j] / flows[j].weight > rates[i] / flows[i].weight * (1.0 + 1e-6) + 1e-9) {
          is_max_normalized = false;
          break;
        }
      }
      if (is_max_normalized) {
        justified = true;
        break;
      }
    }
    EXPECT_TRUE(justified) << "flow " << i << " rate " << rates[i]
                           << " is below demand with no justifying bottleneck";
  }
}

std::vector<RandomCase> MakeCases() {
  std::vector<RandomCase> cases;
  for (uint64_t s = 1; s <= 40; ++s) {
    cases.push_back({s * 7919});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, MaxMinPropertyTest, ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<RandomCase>& param_info) {
                           return "seed" + std::to_string(param_info.param.seed);
                         });

}  // namespace
}  // namespace mihn::fabric
