#include "src/fleet/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>  // For the wall-clock speedup gate only; sim time stays virtual.
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/fleet/inter_host.h"

namespace mihn::fleet {
namespace {

using sim::Bandwidth;
using sim::TimeNs;

// -- InterHostNetwork ---------------------------------------------------------

TEST(InterHostNetworkTest, HostUplinkIsSharedMaxMin) {
  InterHostNetwork::Config config;
  config.hosts = 4;
  config.hosts_per_rack = 4;  // One rack: no rack hops involved.
  InterHostNetwork net(config);
  // Two flows out of host 0 compete for its 100G uplink.
  const int32_t a = net.AddFlow(0, 1, Bandwidth::Gbps(100));
  const int32_t b = net.AddFlow(0, 2, Bandwidth::Gbps(100));
  net.Solve();
  EXPECT_DOUBLE_EQ(net.FlowRate(a).ToGbps(), 50.0);
  EXPECT_DOUBLE_EQ(net.FlowRate(b).ToGbps(), 50.0);
}

TEST(InterHostNetworkTest, RackUplinkBindsCrossRackFlows) {
  InterHostNetwork::Config config;
  config.hosts = 4;
  config.hosts_per_rack = 2;  // Hosts {0,1} in rack 0, {2,3} in rack 1.
  config.rack_up = Bandwidth::Gbps(100);
  config.rack_down = Bandwidth::Gbps(100);
  InterHostNetwork net(config);
  EXPECT_EQ(net.racks(), 2);
  // Distinct source hosts (100G uplink each) but one shared 100G rack uplink.
  const int32_t a = net.AddFlow(0, 2, Bandwidth::Gbps(100));
  const int32_t b = net.AddFlow(1, 3, Bandwidth::Gbps(100));
  net.Solve();
  EXPECT_DOUBLE_EQ(net.FlowRate(a).ToGbps(), 50.0);
  EXPECT_DOUBLE_EQ(net.FlowRate(b).ToGbps(), 50.0);
  // Intra-rack traffic skips the rack hop, but host 2's downlink is shared
  // with flow a: max-min grants each 50.
  const int32_t c = net.AddFlow(3, 2, Bandwidth::Gbps(100));
  net.Solve();
  EXPECT_DOUBLE_EQ(net.FlowRate(c).ToGbps(), 50.0);
  EXPECT_DOUBLE_EQ(net.FlowRate(a).ToGbps(), 50.0);
}

TEST(InterHostNetworkTest, RemoveFlowReleasesCapacity) {
  InterHostNetwork::Config config;
  config.hosts = 2;
  InterHostNetwork net(config);
  const int32_t a = net.AddFlow(0, 1, Bandwidth::Gbps(100));
  const int32_t b = net.AddFlow(0, 1, Bandwidth::Gbps(100));
  net.Solve();
  EXPECT_DOUBLE_EQ(net.FlowRate(a).ToGbps(), 50.0);
  net.RemoveFlow(a);
  net.Solve();
  EXPECT_DOUBLE_EQ(net.FlowRate(a).ToGbps(), 0.0);
  EXPECT_DOUBLE_EQ(net.FlowRate(b).ToGbps(), 100.0);
}

TEST(InterHostNetworkTest, SnapshotOrderIsFixed) {
  InterHostNetwork::Config config;
  config.hosts = 3;
  config.hosts_per_rack = 2;
  InterHostNetwork net(config);
  const auto links = net.SnapshotLinks();
  ASSERT_EQ(links.size(), net.link_count());
  ASSERT_EQ(links.size(), 2u * 3 + 2u * 2);
  EXPECT_EQ(links[0].host, 0);
  EXPECT_TRUE(links[0].up);
  EXPECT_EQ(links[1].host, 0);
  EXPECT_FALSE(links[1].up);
  EXPECT_EQ(links[6].host, -1);  // First rack link after 3 host pairs.
  EXPECT_EQ(links[6].rack, 0);
}

// -- Fleet --------------------------------------------------------------------

// The standard workload for the determinism gates: a mix of intra-rack and
// cross-rack flows over disjoint host pairs, two tenants.
std::vector<CrossHostFlowSpec> GateWorkload(int hosts) {
  std::vector<CrossHostFlowSpec> specs;
  for (int src = 0; src + 40 < hosts; src += 48) {
    CrossHostFlowSpec near;
    near.tenant = 7;
    near.src_host = src;
    near.dst_host = src + 5;  // Same rack at the default width of 32.
    specs.push_back(near);
    CrossHostFlowSpec far;
    far.tenant = 9;
    far.src_host = src + 2;
    far.dst_host = src + 40;  // Crosses into the next rack.
    far.demand = Bandwidth::Gbps(80);
    specs.push_back(far);
  }
  return specs;
}

uint64_t RunGate(int hosts, int ticks, Fleet::Options options, bool reverse_placement,
                 std::string* report = nullptr) {
  Fleet fleet(hosts, options);
  std::vector<CrossHostFlowSpec> specs = GateWorkload(hosts);
  if (reverse_placement) {
    std::reverse(specs.begin(), specs.end());
  }
  for (const CrossHostFlowSpec& spec : specs) {
    fleet.StartCrossHostFlow(spec);
  }
  fleet.Run(ticks);
  if (report != nullptr) {
    *report = fleet.RenderReport();
  }
  return fleet.TelemetryDigest();
}

// The ISSUE's acceptance gate: a 256-host fleet, multi-tick, byte-identical
// telemetry across two independent runs.
TEST(FleetTest, DeterminismGate256Hosts) {
  std::string report_a;
  std::string report_b;
  const uint64_t a = RunGate(256, 3, Fleet::Options{}, false, &report_a);
  const uint64_t b = RunGate(256, 3, Fleet::Options{}, false, &report_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(report_a, report_b);
  EXPECT_NE(a, 0xcbf29ce484222325ull);  // Not the empty-history digest.
}

TEST(FleetTest, DigestIndependentOfPlacementOrder) {
  const uint64_t forward = RunGate(128, 3, Fleet::Options{}, false);
  const uint64_t reversed = RunGate(128, 3, Fleet::Options{}, true);
  EXPECT_EQ(forward, reversed);
}

TEST(FleetTest, DigestIndependentOfAggregationThreads) {
  // The pre-worker-pool knob still sizes the shared pool.
  Fleet::Options serial;
  serial.aggregation_threads = 0;
  Fleet::Options threaded;
  threaded.aggregation_threads = 4;
  threaded.clamp_workers_to_hardware = false;  // Real threads even on 1 core.
  EXPECT_EQ(RunGate(64, 3, serial, false), RunGate(64, 3, threaded, false));
}

// The tentpole gate: the parallel settle + reduction must be invisible in
// the telemetry. Byte-identical digests across worker counts, including
// 0/1 (serial, no pool) and widths beyond the machine's core count.
TEST(FleetTest, DigestIndependentOfWorkerCount256Hosts) {
  std::string baseline_report;
  Fleet::Options serial;
  serial.worker_threads = 0;
  const uint64_t baseline = RunGate(256, 3, serial, false, &baseline_report);
  EXPECT_NE(baseline, 0xcbf29ce484222325ull);  // Not the empty-history digest.
  for (const int workers : {1, 2, 8}) {
    Fleet::Options options;
    options.worker_threads = workers;
    options.clamp_workers_to_hardware = false;  // Real threads even on 1 core.
    std::string report;
    EXPECT_EQ(RunGate(256, 3, options, false, &report), baseline) << workers << " workers";
    EXPECT_EQ(report, baseline_report) << workers << " workers";
  }
}

TEST(FleetTest, WorkerParallelismReflectsOptionsAndClamp) {
  Fleet serial(2);
  EXPECT_EQ(serial.worker_parallelism(), 1);

  Fleet::Options unclamped;
  unclamped.worker_threads = 8;
  unclamped.clamp_workers_to_hardware = false;
  Fleet wide(2, unclamped);
  EXPECT_EQ(wide.worker_parallelism(), 8);

  Fleet::Options clamped;
  clamped.worker_threads = 1 << 20;  // Absurd: must clamp to the machine.
  Fleet sane(2, clamped);
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_LE(sane.worker_parallelism(), static_cast<int>(hw == 0 ? 1u : hw));
  EXPECT_GE(sane.worker_parallelism(), 1);
}

// Finite transfers are the one settle output that touches the shared clock
// (completion events). Cross-worker staging must reproduce the serial
// event sequence exactly: same completion times, same digests.
TEST(FleetTest, ParallelSettleWithFiniteTransfersMatchesSerial) {
  struct Outcome {
    uint64_t digest = 0;
    std::vector<std::pair<int, int64_t>> completions;  // (host, end ns).
  };
  const auto run = [](int workers) {
    Fleet::Options options;
    options.worker_threads = workers;
    options.clamp_workers_to_hardware = false;
    Fleet fleet(8, options);
    Outcome out;
    for (int h = 0; h < fleet.host_count(); ++h) {
      // A transfer sized to finish mid-run, re-solved every tick by the
      // cross-host coupling churn on the same host.
      fabric::TransferSpec transfer;
      transfer.flow.path = *fleet.host(h).fabric().Route(fleet.host(h).server().ssds[0],
                                                         fleet.host(h).server().dimms[0]);
      transfer.flow.tenant = 2;
      transfer.flow.demand = Bandwidth::Gbps(50);
      transfer.bytes = 4 * 1000 * 1000 * (h + 1);  // Staggered completions.
      transfer.on_complete = [&out, h](const fabric::TransferResult& result) {
        out.completions.emplace_back(h, result.end.nanos());
      };
      fleet.host(h).fabric().StartTransfer(std::move(transfer));
    }
    for (int h = 0; h + 1 < fleet.host_count(); h += 2) {
      CrossHostFlowSpec cross;
      cross.tenant = 5;
      cross.src_host = h;
      cross.dst_host = h + 1;
      fleet.StartCrossHostFlow(cross);
    }
    fleet.Run(4);
    out.digest = fleet.TelemetryDigest();
    return out;
  };
  const Outcome serial = run(0);
  ASSERT_FALSE(serial.completions.empty());  // The gate must exercise completions.
  for (const int workers : {2, 8}) {
    const Outcome pooled = run(workers);
    EXPECT_EQ(pooled.digest, serial.digest) << workers << " workers";
    EXPECT_EQ(pooled.completions, serial.completions) << workers << " workers";
  }
}

// The perf acceptance gate: at 1024 hosts a pooled tick must beat serial
// ≥ 3× on machines with real parallelism to spare (≥ 6 cores; ≥ 1.8× on
// 4–5 cores where 3× is not attainable after the serial fraction). Skipped
// under sanitizers (instrumentation skews scheduling) and on < 4 cores,
// where the pool clamps toward serial and there is nothing to measure.
TEST(FleetTest, PooledTickSpeedupGate1024Hosts) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "sanitizer build: wall-clock gate not meaningful";
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
  GTEST_SKIP() << "sanitizer build: wall-clock gate not meaningful";
#endif
#endif
#ifdef MIHN_ENABLE_INVARIANT_CHECKS
  GTEST_SKIP() << "invariant-check build: wall-clock gate not meaningful";
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    GTEST_SKIP() << "only " << hw << " cores: no parallel speedup to measure";
  }
  const double required = hw >= 6 ? 3.0 : 1.8;

  constexpr int kHosts = 1024;
  constexpr int kTicks = 5;
  const auto time_run = [](Fleet::Options options) {
    Fleet fleet(kHosts, options);
    for (const CrossHostFlowSpec& spec : GateWorkload(kHosts)) {
      fleet.StartCrossHostFlow(spec);
    }
    fleet.Tick();  // Warm-up: first solves, pool spin-up, page faults.
    // mihn-check: nondet-ok(wall-clock speedup gate; never enters sim state)
    const auto start = std::chrono::steady_clock::now();
    fleet.Run(kTicks);
    // mihn-check: nondet-ok(wall-clock speedup gate; never enters sim state)
    const auto stop = std::chrono::steady_clock::now();
    const double elapsed =
        // mihn-check: nondet-ok(wall-clock speedup gate; never enters sim state)
        std::chrono::duration<double>(stop - start).count();
    return std::pair<double, uint64_t>(elapsed, fleet.TelemetryDigest());
  };

  Fleet::Options serial;
  serial.worker_threads = 0;
  Fleet::Options pooled;
  pooled.worker_threads = static_cast<int>(hw);
  const auto [serial_secs, serial_digest] = time_run(serial);
  const auto [pooled_secs, pooled_digest] = time_run(pooled);
  ASSERT_EQ(pooled_digest, serial_digest);  // Speed must not buy divergence.
  ASSERT_GT(pooled_secs, 0.0);
  const double speedup = serial_secs / pooled_secs;
  EXPECT_GE(speedup, required) << "serial " << serial_secs << "s vs pooled " << pooled_secs
                               << "s on " << hw << " cores";
}

TEST(FleetTest, TickAdvancesSharedClockAndSamples) {
  Fleet fleet(2);
  EXPECT_EQ(fleet.Now(), TimeNs::Zero());
  const FleetSample& first = fleet.Tick();
  EXPECT_EQ(first.at, fleet.options().tick_period);
  EXPECT_EQ(fleet.host(0).Now(), fleet.Now());
  EXPECT_EQ(fleet.host(1).Now(), fleet.Now());
  fleet.Run(2);
  EXPECT_EQ(fleet.samples().size(), 3u);
  EXPECT_EQ(fleet.samples().back().at.nanos(), 3 * fleet.options().tick_period.nanos());
}

TEST(FleetTest, CrossHostFlowCouplesToMinOfStages) {
  Fleet fleet(2);
  CrossHostFlowSpec spec;
  spec.tenant = 3;
  spec.src_host = 0;
  spec.dst_host = 1;
  spec.demand = Bandwidth::Gbps(4000);  // Far above any stage's capacity.
  const CrossFlowId id = fleet.StartCrossHostFlow(spec);
  EXPECT_EQ(fleet.CrossHostRate(id).bytes_per_sec(), 0.0);  // Before first tick.
  fleet.Run(3);
  const double settled = fleet.CrossHostRate(id).bytes_per_sec();
  EXPECT_GT(settled, 0.0);
  // Bounded by the inter-host access link and by both intra-host stages.
  EXPECT_LE(settled, fleet.options().inter.host_up.bytes_per_sec());
  // After coupling, the source intra-host stage is capped at exactly the
  // end-to-end rate.
  const auto src_flows = fleet.host(0).fabric().ActiveFlows();
  ASSERT_EQ(src_flows.size(), 1u);
  EXPECT_DOUBLE_EQ(fleet.host(0).fabric().FlowRate(src_flows.front()).bytes_per_sec(), settled);
  // A fixed point: further ticks do not move it.
  fleet.Tick();
  EXPECT_DOUBLE_EQ(fleet.CrossHostRate(id).bytes_per_sec(), settled);
  EXPECT_GT(fleet.samples().back().inter_rate_bps, 0.0);
  EXPECT_EQ(fleet.samples().back().cross_host_flows, 1);
}

TEST(FleetTest, StopCrossHostFlowReleasesAllStages) {
  Fleet fleet(3);
  CrossHostFlowSpec spec;
  spec.src_host = 0;
  spec.dst_host = 2;
  const CrossFlowId id = fleet.StartCrossHostFlow(spec);
  fleet.Run(2);
  EXPECT_EQ(fleet.cross_host_flow_count(), 1);
  fleet.StopCrossHostFlow(id);
  EXPECT_EQ(fleet.cross_host_flow_count(), 0);
  EXPECT_EQ(fleet.CrossHostRate(id).bytes_per_sec(), 0.0);
  fleet.Tick();  // Coupling after removal must not touch the dead stages.
  EXPECT_EQ(fleet.samples().back().cross_host_flows, 0);
  EXPECT_EQ(fleet.host(0).fabric().ActiveFlows().size(), 0u);
}

TEST(FleetTest, RootCauseViewRanksFleetWideSuspects) {
  Fleet fleet(3);
  // Tenant 7 saturates a link on hosts 0 and 2; tenant 4 rides along small
  // on host 0 only.
  for (const int h : {0, 2}) {
    fabric::FlowSpec hog;
    hog.path = *fleet.host(h).fabric().Route(fleet.host(h).server().gpus[0],
                                             fleet.host(h).server().dimms[0]);
    hog.tenant = 7;
    fleet.host(h).fabric().StartFlow(hog);
  }
  fabric::FlowSpec minor;
  minor.path = *fleet.host(0).fabric().Route(fleet.host(0).server().ssds[0],
                                             fleet.host(0).server().dimms[0]);
  minor.tenant = 4;
  minor.demand = Bandwidth::Gbps(1);
  fleet.host(0).fabric().StartFlow(minor);
  fleet.Run(2);

  FleetRootCause view = fleet.RootCauseView();
  ASSERT_FALSE(view.hosts.empty());
  EXPECT_EQ(view.hosts.front().host, 0);
  ASSERT_FALSE(view.suspects.empty());
  EXPECT_EQ(view.suspects.front().tenant, 7);
  EXPECT_EQ(view.suspects.front().hosts_implicated, 2);
  EXPECT_GT(fleet.samples().back().max_host_utilization, 0.9);
}

TEST(FleetTest, HeartbeatAlarmsSurfacePerHost) {
  Fleet::Options options;
  options.tick_period = TimeNs::Millis(2);
  Fleet fleet(2, options);
  anomaly::HeartbeatMesh::Config mesh;
  mesh.period = TimeNs::Micros(100);
  mesh.baseline_samples = 4;
  fleet.EnableHeartbeats(mesh);
  EXPECT_TRUE(fleet.heartbeats_enabled());
  fleet.Run(2);  // Establish baselines on a healthy fleet.

  // Silent +5us degradation on host 1, on a link its probes traverse.
  HostNetwork& faulty = fleet.host(1);
  const auto path = *faulty.fabric().Route(faulty.server().nics[0], faulty.server().sockets[0]);
  fabric::LinkFault fault;
  fault.extra_latency = TimeNs::Micros(5);
  faulty.fabric().InjectLinkFault(path.hops[0].link, fault);
  fleet.Run(3);

  const FleetRootCause view = fleet.RootCauseView();
  ASSERT_EQ(view.alarms.size(), 1u);
  EXPECT_EQ(view.alarms.front().host, 1);
  EXPECT_GT(view.alarms.front().first_alarm_at, TimeNs::Zero());
}

TEST(FleetTest, ReportRendersAndWrites) {
  Fleet fleet(4);
  CrossHostFlowSpec spec;
  spec.src_host = 1;
  spec.dst_host = 3;
  fleet.StartCrossHostFlow(spec);
  fleet.Run(2);
  const std::string report = fleet.RenderReport();
  EXPECT_NE(report.find("\"telemetry_digest\""), std::string::npos);
  EXPECT_NE(report.find("\"hosts\": 4"), std::string::npos);
  EXPECT_NE(report.find("\"ticks\""), std::string::npos);
  EXPECT_NE(report.find("\"final_hosts\""), std::string::npos);

  const std::string path = ::testing::TempDir() + "fleet_report_test.json";
  ASSERT_TRUE(fleet.WriteReportFile(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(FleetTest, HostTemplateOptionsApply) {
  Fleet::Options options;
  options.host.preset = HostNetwork::Preset::kEdgeNode;
  Fleet fleet(2, options);
  EXPECT_EQ(fleet.host(0).server().gpus.size(), 0u);
  EXPECT_FALSE(fleet.host(0).owns_clock());
  EXPECT_FALSE(fleet.host(1).owns_clock());
}

}  // namespace
}  // namespace mihn::fleet
