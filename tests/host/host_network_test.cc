#include "src/host/host_network.h"

#include <gtest/gtest.h>

namespace mihn {
namespace {

using sim::TimeNs;

TEST(HostNetworkTest, DefaultBuildIsWired) {
  HostNetwork host;
  EXPECT_EQ(host.topo().Validate(), "");
  EXPECT_EQ(host.Now(), TimeNs::Zero());
  EXPECT_GT(host.topo().component_count(), 10u);
  // Collector and manager auto-started.
  EXPECT_TRUE(host.collector().running());
}

TEST(HostNetworkTest, PresetsSelectTopology) {
  HostNetwork::Options options;
  options.preset = HostNetwork::Preset::kEdgeNode;
  options.autostart = HostNetwork::Autostart::kNone;
  HostNetwork edge(options);
  EXPECT_EQ(edge.server().gpus.size(), 0u);
  options.preset = HostNetwork::Preset::kDgxClass;
  HostNetwork dgx(options);
  EXPECT_EQ(dgx.server().gpus.size(), 8u);
}

TEST(HostNetworkTest, RunForAdvancesClock) {
  HostNetwork host;
  host.RunFor(TimeNs::Millis(3));
  EXPECT_EQ(host.Now(), TimeNs::Millis(3));
  host.RunFor(TimeNs::Millis(2));
  EXPECT_EQ(host.Now(), TimeNs::Millis(5));
}

TEST(HostNetworkTest, AutoStartedCollectorReportsToMonitorStore) {
  HostNetwork host;
  host.RunFor(TimeNs::Millis(10));
  EXPECT_GT(host.collector().samples_taken(), 0u);
  EXPECT_GT(host.collector().bytes_reported(), 0);
}

TEST(HostNetworkTest, ReportingCanBeDisabled) {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kAllUnreported;
  HostNetwork host(options);
  host.RunFor(TimeNs::Millis(10));
  EXPECT_EQ(host.collector().bytes_reported(), 0);
}

TEST(HostNetworkTest, DevicesListCoversEndpoints) {
  HostNetwork host;
  const auto devices = host.Devices();
  const auto& server = host.server();
  EXPECT_EQ(devices.size(),
            server.sockets.size() + server.nics.size() + server.gpus.size() + server.ssds.size());
}

TEST(HostNetworkTest, MakeHeartbeatMeshDefaultsToDevices) {
  HostNetwork host;
  auto mesh = host.MakeHeartbeatMesh();
  const size_t n = host.Devices().size();
  EXPECT_EQ(mesh->pair_count(), n * (n - 1));
}

TEST(HostNetworkTest, CustomServerConstructor) {
  topology::ServerSpec spec;
  spec.sockets = 1;
  spec.gpus_per_leaf = 3;
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  HostNetwork host(topology::BuildServer(spec), options);
  EXPECT_EQ(host.server().gpus.size(), 6u);  // 2 root ports x 1 switch x 3.
  EXPECT_EQ(host.topo().Validate(), "");
}

TEST(HostNetworkTest, SeedControlsDeterminism) {
  auto fingerprint = [](uint64_t seed) {
    HostNetwork::Options options;
    options.seed = seed;
    HostNetwork host(options);
    return host.simulation().ForkRng(1).NextU64();
  };
  EXPECT_EQ(fingerprint(7), fingerprint(7));
  EXPECT_NE(fingerprint(7), fingerprint(8));
}

}  // namespace
}  // namespace mihn
