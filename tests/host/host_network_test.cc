#include "src/host/host_network.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

namespace mihn {
namespace {

using sim::TimeNs;

TEST(HostNetworkTest, DefaultBuildIsWired) {
  HostNetwork host;
  EXPECT_EQ(host.topo().Validate(), "");
  EXPECT_EQ(host.Now(), TimeNs::Zero());
  EXPECT_GT(host.topo().component_count(), 10u);
  // Collector and manager auto-started.
  EXPECT_TRUE(host.collector().running());
}

TEST(HostNetworkTest, PresetsSelectTopology) {
  HostNetwork::Options options;
  options.preset = HostNetwork::Preset::kEdgeNode;
  options.autostart = HostNetwork::Autostart::kNone;
  HostNetwork edge(options);
  EXPECT_EQ(edge.server().gpus.size(), 0u);
  options.preset = HostNetwork::Preset::kDgxClass;
  HostNetwork dgx(options);
  EXPECT_EQ(dgx.server().gpus.size(), 8u);
}

TEST(HostNetworkTest, RunForAdvancesClock) {
  HostNetwork host;
  host.RunFor(TimeNs::Millis(3));
  EXPECT_EQ(host.Now(), TimeNs::Millis(3));
  host.RunFor(TimeNs::Millis(2));
  EXPECT_EQ(host.Now(), TimeNs::Millis(5));
}

TEST(HostNetworkTest, AutoStartedCollectorReportsToMonitorStore) {
  HostNetwork host;
  host.RunFor(TimeNs::Millis(10));
  EXPECT_GT(host.collector().samples_taken(), 0u);
  EXPECT_GT(host.collector().bytes_reported(), 0);
}

TEST(HostNetworkTest, ReportingCanBeDisabled) {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kAllUnreported;
  HostNetwork host(options);
  host.RunFor(TimeNs::Millis(10));
  EXPECT_EQ(host.collector().bytes_reported(), 0);
}

TEST(HostNetworkTest, DevicesListCoversEndpoints) {
  HostNetwork host;
  const auto devices = host.Devices();
  const auto& server = host.server();
  EXPECT_EQ(devices.size(),
            server.sockets.size() + server.nics.size() + server.gpus.size() + server.ssds.size());
}

TEST(HostNetworkTest, MakeHeartbeatMeshDefaultsToDevices) {
  HostNetwork host;
  auto mesh = host.MakeHeartbeatMesh();
  const size_t n = host.Devices().size();
  EXPECT_EQ(mesh->pair_count(), n * (n - 1));
}

TEST(HostNetworkTest, CustomServerConstructor) {
  topology::ServerSpec spec;
  spec.sockets = 1;
  spec.gpus_per_leaf = 3;
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  HostNetwork host(topology::BuildServer(spec), options);
  EXPECT_EQ(host.server().gpus.size(), 6u);  // 2 root ports x 1 switch x 3.
  EXPECT_EQ(host.topo().Validate(), "");
}

TEST(HostNetworkTest, SeedControlsDeterminism) {
  auto fingerprint = [](uint64_t seed) {
    HostNetwork::Options options;
    options.seed = seed;
    HostNetwork host(options);
    return host.simulation().ForkRng(1).NextU64();
  };
  EXPECT_EQ(fingerprint(7), fingerprint(7));
  EXPECT_NE(fingerprint(7), fingerprint(8));
}

// -- Clock injection ----------------------------------------------------------

HostNetwork::Options Quiet() {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  return options;
}

// Elastic SSD -> DIMM flow; returns (bytes_moved, rate) after |run|.
std::pair<double, double> DriveOneFlow(HostNetwork& host, TimeNs run) {
  fabric::FlowSpec spec;
  spec.path = *host.fabric().Route(host.server().ssds[0], host.server().dimms[0]);
  spec.tenant = 1;
  const fabric::FlowId id = host.fabric().StartFlow(spec);
  host.simulation().RunFor(run);
  const auto info = host.fabric().GetFlowInfo(id);
  return {static_cast<double>(info->bytes_moved), info->rate.bytes_per_sec()};
}

TEST(HostNetworkTest, BorrowedClockMatchesOwnedClock) {
  // The owning wrappers are *thin*: an owned host seeded with s and a
  // borrowed host on a caller-made Simulation(s) must be byte-identical.
  HostNetwork::Options options = Quiet();
  options.seed = 42;
  HostNetwork owned(options);
  ASSERT_TRUE(owned.owns_clock());
  const auto owned_result = DriveOneFlow(owned, TimeNs::Millis(5));

  sim::Simulation sim(42);
  HostNetwork borrowed(sim, Quiet());
  ASSERT_FALSE(borrowed.owns_clock());
  const auto borrowed_result = DriveOneFlow(borrowed, TimeNs::Millis(5));

  EXPECT_EQ(owned_result.first, borrowed_result.first);
  EXPECT_EQ(owned_result.second, borrowed_result.second);
  EXPECT_EQ(owned.simulation().ForkRng(9).NextU64(), sim.ForkRng(9).NextU64());
}

TEST(HostNetworkTest, TwoHostsShareOneClockWithInterleavedEvents) {
  sim::Simulation sim;
  HostNetwork a(sim, Quiet());
  HostNetwork b(sim, Quiet());

  // A continuous flow on a, a finite transfer on b: b's completion event
  // interleaves with a's accrual on the same queue.
  fabric::FlowSpec on_a;
  on_a.path = *a.fabric().Route(a.server().ssds[0], a.server().dimms[0]);
  const fabric::FlowId flow_a = a.fabric().StartFlow(on_a);

  bool b_completed = false;
  fabric::TransferSpec on_b;
  on_b.flow.path = *b.fabric().Route(b.server().ssds[0], b.server().dimms[0]);
  on_b.bytes = 1 << 20;
  on_b.on_complete = [&](const fabric::TransferResult&) { b_completed = true; };
  b.fabric().StartTransfer(on_b);

  sim.RunFor(TimeNs::Millis(5));
  EXPECT_TRUE(b_completed);
  EXPECT_GT(a.fabric().GetFlowInfo(flow_a)->bytes_moved, 0);
  // One clock: both hosts observe the same virtual now.
  EXPECT_EQ(a.Now(), sim.Now());
  EXPECT_EQ(b.Now(), sim.Now());
}

TEST(HostNetworkTest, SharedClockResultsIndependentOfConstructionOrder) {
  // Two hosts with distinct workloads on one clock: each host's telemetry
  // must not depend on which host was constructed (= registered its
  // pre-advance hook) first.
  struct PerHost {
    double busy_bytes;
    double idle_bytes;
  };
  const auto run = [](bool busy_first) {
    sim::Simulation sim(3);
    auto busy = std::make_unique<HostNetwork>(sim, Quiet());
    std::unique_ptr<HostNetwork> idle;
    if (!busy_first) {
      idle = std::make_unique<HostNetwork>(sim, Quiet());
      busy = std::make_unique<HostNetwork>(sim, Quiet());
    } else {
      idle = std::make_unique<HostNetwork>(sim, Quiet());
    }
    fabric::FlowSpec load;
    load.path = *busy->fabric().Route(busy->server().gpus[0], busy->server().dimms[0]);
    busy->fabric().StartFlow(load);
    fabric::FlowSpec trickle;
    trickle.path = *idle->fabric().Route(idle->server().ssds[0], idle->server().dimms[0]);
    trickle.demand = sim::Bandwidth::Mbps(10);
    idle->fabric().StartFlow(trickle);
    sim.RunFor(TimeNs::Millis(3));
    PerHost out;
    out.busy_bytes = 0.0;
    out.idle_bytes = 0.0;
    for (const auto& snap : busy->fabric().SnapshotAll()) {
      out.busy_bytes += snap.bytes_total;
    }
    for (const auto& snap : idle->fabric().SnapshotAll()) {
      out.idle_bytes += snap.bytes_total;
    }
    return out;
  };
  const PerHost forward = run(true);
  const PerHost reversed = run(false);
  EXPECT_EQ(forward.busy_bytes, reversed.busy_bytes);
  EXPECT_EQ(forward.idle_bytes, reversed.idle_bytes);
}

TEST(HostNetworkTest, DestructorReleasesObserverSlot) {
  sim::Simulation sim;
  {
    HostNetwork::Options options = Quiet();
    options.trace.enabled = true;
    HostNetwork traced(sim, options);
    traced.RunFor(TimeNs::Micros(10));
  }
  // The traced host uninstalled its observer on destruction; a second
  // traced host on the same clock takes the freed slot.
  HostNetwork::Options options = Quiet();
  options.trace.enabled = true;
  HostNetwork next(sim, options);
  next.RunFor(TimeNs::Micros(10));
  EXPECT_GE(sim.Now(), TimeNs::Micros(20));
}

}  // namespace
}  // namespace mihn
