// Cross-module integration tests: the full stack (workloads + telemetry +
// anomaly platform + manager) operating together on one host, plus edge
// cases that fall between module seams.

#include <gtest/gtest.h>

#include "src/anomaly/bank.h"
#include "src/anomaly/root_cause.h"
#include "src/host/host_network.h"
#include "src/manager/slo_monitor.h"
#include "src/workload/kv_client.h"
#include "src/workload/sources.h"

namespace mihn {
namespace {

using sim::Bandwidth;
using sim::TimeNs;

TEST(EndToEndTest, OperatorStoryDetectDiagnoseRemediate) {
  // The paper's full loop on one host: interference appears, telemetry sees
  // it, root cause names the tenant, the manager remediates, SLOs recover.
  HostNetwork::Options options;
  options.manager.mode = manager::ManagerConfig::Mode::kStatic;
  options.autostart = HostNetwork::Autostart::kCollectorOnly;
  sim::Simulation sim;
  HostNetwork host(sim, options);
  const auto& server = host.server();
  auto& mgr = host.manager();

  // Victim tenant with a 20 GB/s promise (above the 14.5 GB/s unmanaged
  // fair share, so a rogue measurably breaks it) and its real flow.
  const auto victim = mgr.RegisterTenant("victim");
  manager::PerformanceTarget target;
  target.src = server.ssds[0];
  target.dst = server.dimms[0];
  target.bandwidth = Bandwidth::GBps(20);
  const auto alloc = mgr.SubmitIntent(victim, target);
  ASSERT_TRUE(alloc.ok());
  workload::StreamSource::Config vc;
  vc.src = target.src;
  vc.dst = target.dst;
  vc.tenant = victim;
  workload::StreamSource victim_stream(host.fabric(), vc);
  victim_stream.Start();
  mgr.AttachFlow(alloc.id, victim_stream.flow());

  manager::SloMonitor slo(mgr, host.fabric());
  slo.Start();
  host.RunFor(TimeNs::Millis(5));
  EXPECT_TRUE(slo.violations().empty());

  // 1. Interference: an unallocated tenant floods the shared path.
  workload::StreamSource::Config rc;
  rc.src = server.ssds[0];
  rc.dst = server.dimms[1];
  rc.tenant = 77;
  workload::StreamSource rogue(host.fabric(), rc);
  rogue.Start();
  host.RunFor(TimeNs::Millis(5));

  // 2. Detect: the SLO monitor flags the shortfall.
  ASSERT_FALSE(slo.violations().empty());
  EXPECT_EQ(slo.violations().front().tenant, victim);

  // 3. Diagnose: root cause names tenant 77 on the victim's own path.
  anomaly::RootCauseAnalyzer analyzer(host.fabric(), 0.9);
  const auto reports = analyzer.DiagnoseVictim(mgr.GetAllocation(alloc.id)->path);
  ASSERT_FALSE(reports.empty());
  bool rogue_blamed = false;
  for (const auto& share : reports.front().tenants) {
    if (share.tenant == 77) {
      rogue_blamed = true;
    }
  }
  EXPECT_TRUE(rogue_blamed);

  // 4. Remediate: start the arbiter; the reservation re-asserts itself.
  mgr.Start();
  mgr.ArbitrateOnce();
  host.RunFor(TimeNs::Millis(5));
  EXPECT_NEAR(victim_stream.AchievedRate().ToGBps(), 20.0, 0.5);
  const size_t violations_at_fix = slo.violations().size();
  host.RunFor(TimeNs::Millis(10));
  EXPECT_EQ(slo.violations().size(), violations_at_fix);  // No new ones.
}

TEST(EndToEndTest, ProbeIntentPredictsAdmission) {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  sim::Simulation sim;
  HostNetwork host(sim, options);
  auto& mgr = host.manager();
  const auto tenant = mgr.RegisterTenant("t");
  manager::PerformanceTarget target;
  target.src = host.server().ssds[0];
  target.dst = host.server().dimms[0];
  target.bandwidth = Bandwidth::GBps(20);

  // Dry-run says yes and changes nothing.
  const auto probe = mgr.ProbeIntent(tenant, target);
  ASSERT_TRUE(probe.has_value());
  EXPECT_TRUE(mgr.ReservedOn(probe->path.hops[0]).IsZero());

  // Commit; now a second 20 GB/s probe must predict rejection...
  ASSERT_TRUE(mgr.SubmitIntent(tenant, target).ok());
  EXPECT_FALSE(mgr.ProbeIntent(tenant, target).has_value());
  // ...and SubmitIntent agrees with its own dry run.
  EXPECT_FALSE(mgr.SubmitIntent(tenant, target).ok());
  // Unknown tenant and zero bandwidth probe cleanly.
  EXPECT_FALSE(mgr.ProbeIntent(999, target).has_value());
  target.bandwidth = Bandwidth::Zero();
  EXPECT_FALSE(mgr.ProbeIntent(tenant, target).has_value());
}

TEST(EndToEndTest, BatchLimitsApplyAtomically) {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  sim::Simulation sim;
  HostNetwork host(sim, options);
  const auto& server = host.server();
  const auto path = *host.fabric().Route(server.ssds[0], server.dimms[0]);
  fabric::FlowSpec spec;
  spec.path = path;
  const auto f1 = host.fabric().StartFlow(spec);
  const auto f2 = host.fabric().StartFlow(spec);
  host.fabric().FlowRate(f1);  // Settle the StartFlow mutations.
  const uint64_t recomputes_before = host.fabric().recompute_count();
  host.fabric().SetFlowLimitsBatch({{f1, Bandwidth::GBps(3)},
                                    {f2, Bandwidth::GBps(4)},
                                    {9999, Bandwidth::GBps(1)}});  // Unknown skipped.
  EXPECT_DOUBLE_EQ(host.fabric().FlowRate(f1).ToGBps(), 3.0);
  EXPECT_DOUBLE_EQ(host.fabric().FlowRate(f2).ToGBps(), 4.0);
  EXPECT_EQ(host.fabric().recompute_count(), recomputes_before + 1);  // One solve.
  // An all-unknown batch does not even mark the fabric dirty.
  host.fabric().SetFlowLimitsBatch({{12345, Bandwidth::GBps(1)}});
  host.fabric().FlowRate(f1);
  EXPECT_EQ(host.fabric().recompute_count(), recomputes_before + 1);
}

TEST(EndToEndTest, WorkConservingSplitsSlackByTenantWeight) {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  options.manager.mode = manager::ManagerConfig::Mode::kWorkConserving;
  sim::Simulation sim;
  HostNetwork host(sim, options);
  const auto& server = host.server();
  auto& mgr = host.manager();
  // Two tenants, weight 2 vs 1, small equal reservations on one path.
  const auto heavy = mgr.RegisterTenant("heavy", 2.0);
  const auto light = mgr.RegisterTenant("light", 1.0);
  manager::PerformanceTarget target;
  target.src = server.ssds[0];
  target.dst = server.dimms[0];
  target.bandwidth = Bandwidth::GBps(2);
  const auto ha = mgr.SubmitIntent(heavy, target);
  target.dst = server.dimms[1];
  const auto la = mgr.SubmitIntent(light, target);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(la.ok());

  workload::StreamSource::Config hc;
  hc.src = server.ssds[0];
  hc.dst = server.dimms[0];
  hc.tenant = heavy;
  workload::StreamSource hs(host.fabric(), hc);
  hs.Start();
  mgr.AttachFlow(ha.id, hs.flow());
  workload::StreamSource::Config lc = hc;
  lc.dst = server.dimms[1];
  lc.tenant = light;
  workload::StreamSource ls(host.fabric(), lc);
  ls.Start();
  mgr.AttachFlow(la.id, ls.flow());

  mgr.ArbitrateOnce();
  // Slack on the shared PCIe hops = 29*0.95 - 4 = ~23.6 GB/s, split 2:1.
  const double heavy_rate = hs.AchievedRate().ToGBps();
  const double light_rate = ls.AchievedRate().ToGBps();
  EXPECT_NEAR((heavy_rate - 2.0) / (light_rate - 2.0), 2.0, 0.15);
}

TEST(EndToEndTest, HeartbeatMeshWithUnreachableParticipantDegrades) {
  // A participant pair with no path (external host of another NIC after
  // link removal is impossible here, so use two external hosts: their only
  // path crosses both NICs — actually reachable; instead verify a
  // one-component mesh yields zero pairs and never crashes).
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  sim::Simulation sim;
  HostNetwork host(sim, options);
  anomaly::HeartbeatMesh::Config config;
  config.participants = {host.server().nics[0]};
  anomaly::HeartbeatMesh mesh(host.fabric(), config);
  EXPECT_EQ(mesh.pair_count(), 0u);
  mesh.Start();
  host.RunFor(TimeNs::Millis(5));
  EXPECT_EQ(mesh.probes_sent(), 0u);
  EXPECT_TRUE(mesh.LocalizeFaults().empty());
}

TEST(EndToEndTest, KvOverCxlHostWorks) {
  // The CXL preset composes with everything else.
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  sim::Simulation sim;
  HostNetwork host(sim, topology::CxlPooledServer(), options);
  workload::KvClient::Config kv_config;
  kv_config.client = host.server().external_hosts[0];
  kv_config.server = host.server().cxl_memories[0];  // KV data in CXL memory.
  workload::KvClient kv(host.fabric(), kv_config);
  kv.Start();
  host.RunFor(TimeNs::Millis(10));
  EXPECT_GT(kv.completed_ops(), 100);
}

TEST(EndToEndTest, DetectorBankOverThroughputCatchesPacketFlood) {
  // Rate-based counters are blind to packet floods; the byte-delta
  // throughput series is not. The fine collector + EWMA bank catches a
  // packet-level aggressor.
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kCollectorOnly;
  options.telemetry.period = TimeNs::Millis(1);
  sim::Simulation sim;
  HostNetwork host(sim, options);
  const auto& server = host.server();
  const auto path = *host.fabric().Route(server.nics[0], server.sockets[0]);

  anomaly::DetectorBank bank;
  bank.Attach(
      telemetry::Collector::LinkThroughputKey(path.hops[0].link, path.hops[0].forward),
      std::make_unique<anomaly::EwmaDetector>(0.2, 6.0, 8));
  host.RunFor(TimeNs::Millis(20));
  EXPECT_TRUE(bank.Scan(host.collector()).empty());

  host.simulation().SchedulePeriodic(TimeNs::Micros(2), [&] {
    fabric::PacketSpec pkt;
    pkt.path = path;
    pkt.bytes = 4096;
    host.fabric().SendPacket(std::move(pkt));
  });
  host.RunFor(TimeNs::Millis(10));
  EXPECT_FALSE(bank.Scan(host.collector()).empty());
}

}  // namespace
}  // namespace mihn
