#include "src/manager/intent.h"

#include <gtest/gtest.h>

#include "src/topology/presets.h"

namespace mihn::manager {
namespace {

using sim::Bandwidth;

topology::Path MakePath(const std::vector<topology::DirectedLink>& hops) {
  topology::Path path;
  path.hops = hops;
  path.nodes.resize(hops.size() + 1);
  return path;
}

Allocation MakeAllocation(fabric::TenantId tenant, double gbps,
                          const std::vector<topology::DirectedLink>& hops) {
  Allocation alloc;
  alloc.tenant = tenant;
  alloc.target.bandwidth = Bandwidth::GBps(gbps);
  alloc.path = MakePath(hops);
  return alloc;
}

TEST(InterpretTest, OneRequirementPerHop) {
  const auto path = MakePath({{0, true}, {3, false}, {5, true}});
  const auto reqs = Interpret(path, Bandwidth::Gbps(20));
  ASSERT_EQ(reqs.size(), 3u);
  for (const auto& req : reqs) {
    EXPECT_DOUBLE_EQ(req.bandwidth.ToGbps(), 20.0);
  }
  EXPECT_EQ(reqs[1].link.link, 3);
  EXPECT_FALSE(reqs[1].link.forward);
}

TEST(InterpretTest, EmptyPathNoRequirements) {
  EXPECT_TRUE(Interpret(topology::Path{}, Bandwidth::Gbps(1)).empty());
}

TEST(AggregateTest, PipeReservationsAdd) {
  const auto a1 = MakeAllocation(1, 10, {{0, true}, {1, true}});
  const auto a2 = MakeAllocation(1, 5, {{1, true}, {2, true}});
  std::map<fabric::TenantId, ResourceModel> models{{1, ResourceModel::kPipe}};
  const auto totals = AggregateReservations({&a1, &a2}, models);
  EXPECT_DOUBLE_EQ(totals.at(topology::DirectedIndex({0, true})), 10e9);
  EXPECT_DOUBLE_EQ(totals.at(topology::DirectedIndex({1, true})), 15e9);
  EXPECT_DOUBLE_EQ(totals.at(topology::DirectedIndex({2, true})), 5e9);
}

TEST(AggregateTest, HoseReservationsTakeMaxPerTenant) {
  // Same tenant, hose model, both crossing link 1: reserve max(10, 5) = 10.
  const auto a1 = MakeAllocation(1, 10, {{0, true}, {1, true}});
  const auto a2 = MakeAllocation(1, 5, {{1, true}, {2, true}});
  std::map<fabric::TenantId, ResourceModel> models{{1, ResourceModel::kHose}};
  const auto totals = AggregateReservations({&a1, &a2}, models);
  EXPECT_DOUBLE_EQ(totals.at(topology::DirectedIndex({1, true})), 10e9);
}

TEST(AggregateTest, HoseAcrossTenantsStillAdds) {
  const auto a1 = MakeAllocation(1, 10, {{1, true}});
  const auto a2 = MakeAllocation(2, 5, {{1, true}});
  std::map<fabric::TenantId, ResourceModel> models{{1, ResourceModel::kHose},
                                                   {2, ResourceModel::kHose}};
  const auto totals = AggregateReservations({&a1, &a2}, models);
  EXPECT_DOUBLE_EQ(totals.at(topology::DirectedIndex({1, true})), 15e9);
}

TEST(AggregateTest, MixedModels) {
  const auto pipe1 = MakeAllocation(1, 4, {{0, true}});
  const auto pipe2 = MakeAllocation(1, 4, {{0, true}});
  const auto hose1 = MakeAllocation(2, 6, {{0, true}});
  const auto hose2 = MakeAllocation(2, 3, {{0, true}});
  std::map<fabric::TenantId, ResourceModel> models{{1, ResourceModel::kPipe},
                                                   {2, ResourceModel::kHose}};
  const auto totals = AggregateReservations({&pipe1, &pipe2, &hose1, &hose2}, models);
  // Pipe: 4+4 = 8; hose: max(6,3) = 6; total 14 GB/s.
  EXPECT_DOUBLE_EQ(totals.at(topology::DirectedIndex({0, true})), 14e9);
}

TEST(AggregateTest, UnknownTenantDefaultsToPipe) {
  const auto a1 = MakeAllocation(9, 2, {{0, true}});
  const auto a2 = MakeAllocation(9, 2, {{0, true}});
  const auto totals = AggregateReservations({&a1, &a2}, {});
  EXPECT_DOUBLE_EQ(totals.at(topology::DirectedIndex({0, true})), 4e9);
}

TEST(AggregateTest, DirectionsAreSeparate) {
  const auto fwd = MakeAllocation(1, 7, {{0, true}});
  const auto rev = MakeAllocation(1, 3, {{0, false}});
  const auto totals = AggregateReservations({&fwd, &rev}, {});
  EXPECT_DOUBLE_EQ(totals.at(topology::DirectedIndex({0, true})), 7e9);
  EXPECT_DOUBLE_EQ(totals.at(topology::DirectedIndex({0, false})), 3e9);
}

TEST(ResourceModelTest, Names) {
  EXPECT_EQ(ResourceModelName(ResourceModel::kPipe), "pipe");
  EXPECT_EQ(ResourceModelName(ResourceModel::kHose), "hose");
}

}  // namespace
}  // namespace mihn::manager
