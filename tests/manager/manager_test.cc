#include "src/manager/manager.h"

#include <gtest/gtest.h>

#include "src/host/host_network.h"
#include "src/workload/sources.h"

namespace mihn::manager {
namespace {

using sim::Bandwidth;
using sim::TimeNs;

HostNetwork::Options Quiet() {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  return options;
}

PerformanceTarget SsdTarget(const topology::Server& server, double gbps) {
  PerformanceTarget target;
  target.src = server.ssds[0];
  target.dst = server.dimms[0];
  target.bandwidth = Bandwidth::GBps(gbps);
  return target;
}

TEST(ManagerTest, RegisterAndLookupTenant) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Manager manager(host.fabric());
  const fabric::TenantId id = manager.RegisterTenant("alice", 2.0, ResourceModel::kHose);
  const Tenant* tenant = manager.GetTenant(id);
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->name, "alice");
  EXPECT_DOUBLE_EQ(tenant->weight, 2.0);
  EXPECT_EQ(tenant->model, ResourceModel::kHose);
  EXPECT_EQ(manager.GetTenant(999), nullptr);
}

TEST(ManagerTest, SubmitIntentAdmitsAndReserves) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Manager manager(host.fabric());
  const fabric::TenantId tenant = manager.RegisterTenant("alice");
  const auto result = manager.SubmitIntent(tenant, SsdTarget(host.server(), 10));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(manager.admitted(), 1u);
  const Allocation* alloc = manager.GetAllocation(result.id);
  ASSERT_NE(alloc, nullptr);
  EXPECT_EQ(alloc->tenant, tenant);
  for (const topology::DirectedLink& hop : alloc->path.hops) {
    EXPECT_DOUBLE_EQ(manager.ReservedOn(hop).ToGBps(), 10.0);
  }
}

TEST(ManagerTest, RejectsUnknownTenantAndBadTargets) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Manager manager(host.fabric());
  EXPECT_FALSE(manager.SubmitIntent(42, SsdTarget(host.server(), 10)).ok());
  const fabric::TenantId tenant = manager.RegisterTenant("alice");
  EXPECT_FALSE(manager.SubmitIntent(tenant, SsdTarget(host.server(), 0)).ok());
  EXPECT_EQ(manager.rejected(), 2u);
}

TEST(ManagerTest, AdmissionControlRejectsOversubscription) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Manager manager(host.fabric());
  const fabric::TenantId tenant = manager.RegisterTenant("alice");
  // PCIe effective ~29 GB/s: two 14 GB/s fit, a third cannot.
  EXPECT_TRUE(manager.SubmitIntent(tenant, SsdTarget(host.server(), 14)).ok());
  EXPECT_TRUE(manager.SubmitIntent(tenant, SsdTarget(host.server(), 13)).ok());
  const auto third = manager.SubmitIntent(tenant, SsdTarget(host.server(), 14));
  EXPECT_FALSE(third.ok());
  EXPECT_NE(third.error.find("no feasible path"), std::string::npos);
}

TEST(ManagerTest, ReleaseFreesCapacity) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Manager manager(host.fabric());
  const fabric::TenantId tenant = manager.RegisterTenant("alice");
  const auto first = manager.SubmitIntent(tenant, SsdTarget(host.server(), 20));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(manager.SubmitIntent(tenant, SsdTarget(host.server(), 20)).ok());
  manager.ReleaseAllocation(first.id);
  EXPECT_TRUE(manager.SubmitIntent(tenant, SsdTarget(host.server(), 20)).ok());
  EXPECT_EQ(manager.GetAllocation(first.id), nullptr);
}

TEST(ManagerTest, HoseTenantSharesReservation) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Manager manager(host.fabric());
  const fabric::TenantId hose = manager.RegisterTenant("hose", 1.0, ResourceModel::kHose);
  // Two targets from the same SSD over the same first hop: hose model
  // reserves max, not sum, so both 14 GB/s targets fit where pipe would not.
  PerformanceTarget t1 = SsdTarget(host.server(), 14);
  PerformanceTarget t2 = SsdTarget(host.server(), 14);
  t2.dst = host.server().dimms[1];
  ASSERT_TRUE(manager.SubmitIntent(hose, t1).ok());
  ASSERT_TRUE(manager.SubmitIntent(hose, t2).ok());
  // The shared first hop carries max(14,14)=14, not 28.
  const auto path = *host.fabric().Route(host.server().ssds[0], host.server().dimms[0]);
  EXPECT_DOUBLE_EQ(manager.ReservedOn(path.hops[0]).ToGBps(), 14.0);
}

TEST(ManagerTest, StaticModeEnforcesReservation) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  ManagerConfig config;
  config.mode = ManagerConfig::Mode::kStatic;
  Manager manager(host.fabric(), config);
  const fabric::TenantId tenant = manager.RegisterTenant("alice");
  const auto alloc = manager.SubmitIntent(tenant, SsdTarget(host.server(), 5));
  ASSERT_TRUE(alloc.ok());

  fabric::FlowSpec spec;
  spec.path = manager.GetAllocation(alloc.id)->path;
  spec.tenant = tenant;
  const fabric::FlowId flow = host.fabric().StartFlow(spec);
  manager.AttachFlow(alloc.id, flow);
  // Before arbitration the elastic flow grabs the whole PCIe link.
  EXPECT_GT(host.fabric().FlowRate(flow).ToGBps(), 20.0);
  manager.ArbitrateOnce();
  // Static mode caps it at the reservation even though the link is idle.
  EXPECT_NEAR(host.fabric().FlowRate(flow).ToGBps(), 5.0, 0.1);
}

TEST(ManagerTest, WorkConservingGrantsIdleHeadroom) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  ManagerConfig config;
  config.mode = ManagerConfig::Mode::kWorkConserving;
  Manager manager(host.fabric(), config);
  const fabric::TenantId tenant = manager.RegisterTenant("alice");
  const auto alloc = manager.SubmitIntent(tenant, SsdTarget(host.server(), 5));
  ASSERT_TRUE(alloc.ok());
  fabric::FlowSpec spec;
  spec.path = manager.GetAllocation(alloc.id)->path;
  spec.tenant = tenant;
  const fabric::FlowId flow = host.fabric().StartFlow(spec);
  manager.AttachFlow(alloc.id, flow);
  manager.ArbitrateOnce();
  // Reservation 5 + all the idle slack: far above 5.
  EXPECT_GT(host.fabric().FlowRate(flow).ToGBps(), 20.0);
}

TEST(ManagerTest, ScavengerThrottledToSlack) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  ManagerConfig config;
  config.mode = ManagerConfig::Mode::kStatic;
  Manager manager(host.fabric(), config);
  const fabric::TenantId victim = manager.RegisterTenant("victim");
  const auto alloc = manager.SubmitIntent(victim, SsdTarget(host.server(), 20));
  ASSERT_TRUE(alloc.ok());
  fabric::FlowSpec vspec;
  vspec.path = manager.GetAllocation(alloc.id)->path;
  vspec.tenant = victim;
  const fabric::FlowId vflow = host.fabric().StartFlow(vspec);
  manager.AttachFlow(alloc.id, vflow);

  // Malicious tenant floods the same path without any allocation.
  fabric::FlowSpec mspec;
  mspec.path = vspec.path;
  mspec.tenant = 99;
  const fabric::FlowId mflow = host.fabric().StartFlow(mspec);

  // Unmanaged: they split the link; the victim's 20 GB/s promise is broken.
  EXPECT_LT(host.fabric().FlowRate(vflow).ToGBps(), 16.0);

  manager.ArbitrateOnce();
  EXPECT_NEAR(host.fabric().FlowRate(vflow).ToGBps(), 20.0, 0.5);
  // The scavenger only gets what is left after the reservation.
  EXPECT_LT(host.fabric().FlowRate(mflow).ToGBps(), 9.0);
}

TEST(ManagerTest, PeriodicArbitrationRuns) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  ManagerConfig config;
  config.mode = ManagerConfig::Mode::kWorkConserving;
  config.arbiter_quantum = TimeNs::Micros(100);
  Manager manager(host.fabric(), config);
  manager.Start();
  host.RunFor(TimeNs::Millis(1));
  EXPECT_EQ(manager.arbitrations(), 10u);
  manager.Stop();
  host.RunFor(TimeNs::Millis(1));
  EXPECT_EQ(manager.arbitrations(), 10u);
}

TEST(ManagerTest, OffModeDoesNothing) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  ManagerConfig config;
  config.mode = ManagerConfig::Mode::kOff;
  Manager manager(host.fabric(), config);
  manager.Start();  // No-op.
  const fabric::TenantId tenant = manager.RegisterTenant("alice");
  const auto alloc = manager.SubmitIntent(tenant, SsdTarget(host.server(), 5));
  fabric::FlowSpec spec;
  spec.path = manager.GetAllocation(alloc.id)->path;
  const fabric::FlowId flow = host.fabric().StartFlow(spec);
  manager.AttachFlow(alloc.id, flow);
  manager.ArbitrateOnce();
  EXPECT_GT(host.fabric().FlowRate(flow).ToGBps(), 20.0);  // Unrestricted.
}

TEST(ManagerTest, TenantViewShowsVirtualLinks) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Manager manager(host.fabric());
  const fabric::TenantId tenant = manager.RegisterTenant("alice");
  const auto alloc = manager.SubmitIntent(tenant, SsdTarget(host.server(), 10));
  ASSERT_TRUE(alloc.ok());
  fabric::FlowSpec spec;
  spec.path = manager.GetAllocation(alloc.id)->path;
  spec.tenant = tenant;
  spec.demand = Bandwidth::GBps(4);
  const fabric::FlowId flow = host.fabric().StartFlow(spec);
  manager.AttachFlow(alloc.id, flow);

  const VirtualView view = manager.TenantView(tenant);
  ASSERT_EQ(view.links.size(), 1u);
  // The illusion: capacity equals exactly the allocation, regardless of the
  // physical link sizes underneath.
  EXPECT_DOUBLE_EQ(view.links[0].capacity.ToGBps(), 10.0);
  EXPECT_NEAR(view.links[0].used.ToGBps(), 4.0, 0.01);
  EXPECT_NEAR(view.links[0].utilization, 0.4, 0.001);
  EXPECT_GT(view.links[0].base_latency.nanos(), 0);
  EXPECT_DOUBLE_EQ(view.total_allocated.ToGBps(), 10.0);
  // Other tenants see nothing of alice's world.
  EXPECT_TRUE(manager.TenantView(tenant + 1).links.empty());
}

TEST(ManagerTest, DetachRestoresFlowFreedom) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  ManagerConfig config;
  config.mode = ManagerConfig::Mode::kStatic;
  Manager manager(host.fabric(), config);
  const fabric::TenantId tenant = manager.RegisterTenant("alice");
  const auto alloc = manager.SubmitIntent(tenant, SsdTarget(host.server(), 2));
  fabric::FlowSpec spec;
  spec.path = manager.GetAllocation(alloc.id)->path;
  const fabric::FlowId flow = host.fabric().StartFlow(spec);
  manager.AttachFlow(alloc.id, flow);
  manager.ArbitrateOnce();
  EXPECT_NEAR(host.fabric().FlowRate(flow).ToGBps(), 2.0, 0.1);
  manager.DetachFlow(alloc.id, flow);
  EXPECT_GT(host.fabric().FlowRate(flow).ToGBps(), 20.0);
}

TEST(ManagerTest, AttachedFlowPrunedAfterCompletion) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Manager manager(host.fabric());
  const fabric::TenantId tenant = manager.RegisterTenant("alice");
  const auto alloc = manager.SubmitIntent(tenant, SsdTarget(host.server(), 5));
  fabric::TransferSpec t;
  t.flow.path = manager.GetAllocation(alloc.id)->path;
  t.bytes = 1000;
  const fabric::FlowId flow = host.fabric().StartTransfer(std::move(t));
  manager.AttachFlow(alloc.id, flow);
  host.RunFor(TimeNs::Millis(1));  // Transfer completes and flow vanishes.
  manager.ArbitrateOnce();         // Must prune without crashing.
  EXPECT_TRUE(manager.GetAllocation(alloc.id)->flows.empty());
}

}  // namespace
}  // namespace mihn::manager
