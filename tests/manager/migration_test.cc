#include <gtest/gtest.h>

#include "src/host/host_network.h"
#include "src/manager/manager.h"

namespace mihn::manager {
namespace {

using sim::Bandwidth;

HostNetwork::Options Quiet() {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  return options;
}

TEST(MigrationTest, MovesAllocationToNewEndpoints) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Manager manager(host.fabric());
  const auto& server = host.server();
  const auto tenant = manager.RegisterTenant("alice");
  PerformanceTarget target;
  target.src = server.ssds[0];
  target.dst = server.dimms[0];
  target.bandwidth = Bandwidth::GBps(10);
  const auto alloc = manager.SubmitIntent(tenant, target);
  ASSERT_TRUE(alloc.ok());
  const topology::Path old_path = manager.GetAllocation(alloc.id)->path;

  const auto moved = manager.MigrateAllocation(alloc.id, server.ssds[2], server.dimms[4]);
  ASSERT_TRUE(moved.ok()) << moved.error;
  EXPECT_EQ(moved.id, alloc.id);  // Identity is stable.
  const Allocation* after = manager.GetAllocation(alloc.id);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->target.src, server.ssds[2]);
  EXPECT_EQ(after->target.dst, server.dimms[4]);
  EXPECT_DOUBLE_EQ(after->target.bandwidth.ToGBps(), 10.0);
  // Old path released, new path reserved.
  EXPECT_DOUBLE_EQ(manager.ReservedOn(old_path.hops[0]).ToGBps(), 0.0);
  EXPECT_DOUBLE_EQ(manager.ReservedOn(after->path.hops[0]).ToGBps(), 10.0);
}

TEST(MigrationTest, SelfCreditAllowsMigrationWithinFullLink) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Manager manager(host.fabric());
  const auto& server = host.server();
  const auto tenant = manager.RegisterTenant("alice");
  PerformanceTarget target;
  target.src = server.ssds[0];
  target.dst = server.dimms[0];
  target.bandwidth = Bandwidth::GBps(25);  // Nearly the whole PCIe path.
  const auto alloc = manager.SubmitIntent(tenant, target);
  ASSERT_TRUE(alloc.ok());
  // Migrating to a different DIMM re-uses the saturated first hops; without
  // self-credit the check would double-count and fail.
  const auto moved = manager.MigrateAllocation(alloc.id, server.ssds[0], server.dimms[1]);
  EXPECT_TRUE(moved.ok()) << moved.error;
}

TEST(MigrationTest, FailureLeavesAllocationIntact) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Manager manager(host.fabric());
  const auto& server = host.server();
  const auto tenant = manager.RegisterTenant("alice");
  PerformanceTarget target;
  target.src = server.ssds[0];
  target.dst = server.dimms[0];
  target.bandwidth = Bandwidth::GBps(10);
  const auto alloc = manager.SubmitIntent(tenant, target);
  ASSERT_TRUE(alloc.ok());
  const Allocation before = *manager.GetAllocation(alloc.id);

  // Unreachable destination: migrate to the same component (no path).
  const auto moved = manager.MigrateAllocation(alloc.id, server.ssds[0], server.ssds[0]);
  EXPECT_FALSE(moved.ok());
  const Allocation* after = manager.GetAllocation(alloc.id);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->target.dst, before.target.dst);
  EXPECT_DOUBLE_EQ(manager.ReservedOn(before.path.hops[0]).ToGBps(), 10.0);
}

TEST(MigrationTest, UnknownAllocationRejected) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Manager manager(host.fabric());
  const auto moved = manager.MigrateAllocation(42, 0, 1);
  EXPECT_FALSE(moved.ok());
  EXPECT_NE(moved.error.find("unknown"), std::string::npos);
}

TEST(MigrationTest, AttachedFlowsAreDetachedAndUnlimited) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  ManagerConfig config;
  config.mode = ManagerConfig::Mode::kStatic;
  Manager manager(host.fabric(), config);
  const auto& server = host.server();
  const auto tenant = manager.RegisterTenant("alice");
  PerformanceTarget target;
  target.src = server.ssds[0];
  target.dst = server.dimms[0];
  target.bandwidth = Bandwidth::GBps(5);
  const auto alloc = manager.SubmitIntent(tenant, target);
  fabric::FlowSpec spec;
  spec.path = manager.GetAllocation(alloc.id)->path;
  const fabric::FlowId flow = host.fabric().StartFlow(spec);
  manager.AttachFlow(alloc.id, flow);
  manager.ArbitrateOnce();
  EXPECT_NEAR(host.fabric().FlowRate(flow).ToGBps(), 5.0, 0.1);

  const auto moved = manager.MigrateAllocation(alloc.id, server.ssds[1], server.dimms[1]);
  ASSERT_TRUE(moved.ok());
  EXPECT_TRUE(manager.GetAllocation(alloc.id)->flows.empty());
  // The old flow is released from its cap.
  EXPECT_GT(host.fabric().FlowRate(flow).ToGBps(), 20.0);
}

TEST(MigrationTest, VirtualViewFollowsTheMove) {
  // The tenant's virtual link persists across migration — same capacity,
  // new endpoints — without the tenant reconfiguring anything (§3.2).
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Manager manager(host.fabric());
  const auto& server = host.server();
  const auto tenant = manager.RegisterTenant("alice");
  PerformanceTarget target;
  target.src = server.ssds[0];
  target.dst = server.dimms[0];
  target.bandwidth = Bandwidth::GBps(10);
  const auto alloc = manager.SubmitIntent(tenant, target);
  ASSERT_TRUE(manager.MigrateAllocation(alloc.id, server.ssds[3], server.dimms[7]).ok());
  const VirtualView view = manager.TenantView(tenant);
  ASSERT_EQ(view.links.size(), 1u);
  EXPECT_EQ(view.links[0].src, server.ssds[3]);
  EXPECT_EQ(view.links[0].dst, server.dimms[7]);
  EXPECT_DOUBLE_EQ(view.links[0].capacity.ToGBps(), 10.0);
}

}  // namespace
}  // namespace mihn::manager
