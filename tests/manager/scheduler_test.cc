#include "src/manager/scheduler.h"

#include <gtest/gtest.h>

#include "src/host/host_network.h"

namespace mihn::manager {
namespace {

using sim::Bandwidth;
using sim::TimeNs;

HostNetwork::Options Quiet() {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  options.preset = HostNetwork::Preset::kDgxClass;
  return options;
}

TEST(SchedulerTest, PlacesFeasibleTarget) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Scheduler scheduler(host.fabric(), SchedulerConfig{});
  PerformanceTarget target;
  target.src = host.server().gpus[0];
  target.dst = host.server().ssds.back();
  target.bandwidth = Bandwidth::Gbps(20);
  const auto placement = scheduler.Place(target, {});
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->path.source(), target.src);
  EXPECT_EQ(placement->path.destination(), target.dst);
  EXPECT_GT(placement->max_utilization, 0.0);
}

TEST(SchedulerTest, RejectsOverCapacityTarget) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Scheduler scheduler(host.fabric(), SchedulerConfig{});
  PerformanceTarget target;
  target.src = host.server().gpus[0];
  target.dst = host.server().ssds[0];
  target.bandwidth = Bandwidth::GBps(1000);  // No PCIe path can carry this.
  EXPECT_FALSE(scheduler.Place(target, {}).has_value());
}

TEST(SchedulerTest, RespectsLatencyBound) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Scheduler scheduler(host.fabric(), SchedulerConfig{});
  PerformanceTarget target;
  target.src = host.server().gpus[0];
  target.dst = host.server().ssds[0];
  target.bandwidth = Bandwidth::Gbps(1);
  target.max_latency = TimeNs::Nanos(1);  // Impossible.
  EXPECT_FALSE(scheduler.Place(target, {}).has_value());
  target.max_latency = TimeNs::Micros(10);  // Generous.
  EXPECT_TRUE(scheduler.Place(target, {}).has_value());
}

TEST(SchedulerTest, AvoidsReservedLinks) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  Scheduler scheduler(host.fabric(), SchedulerConfig{});
  PerformanceTarget target;
  // Cross-socket: parallel inter-socket links offer alternatives.
  target.src = host.server().gpus[0];
  target.dst = host.server().ssds.back();
  target.bandwidth = Bandwidth::GBps(10);

  const auto first = scheduler.Place(target, {});
  ASSERT_TRUE(first.has_value());

  // Heavily reserve the first placement's inter-socket hop; a re-placement
  // should route around it.
  std::map<int32_t, double> reserved;
  for (const topology::DirectedLink& hop : first->path.hops) {
    if (host.topo().link(hop.link).spec.kind == topology::LinkKind::kInterSocket) {
      reserved[topology::DirectedIndex(hop)] = 40e9;  // Of 46 GB/s.
    }
  }
  const auto second = scheduler.Place(target, reserved);
  ASSERT_TRUE(second.has_value());
  bool avoided = true;
  for (const auto& [index, bw] : reserved) {
    for (const topology::DirectedLink& hop : second->path.hops) {
      if (topology::DirectedIndex(hop) == index) {
        avoided = false;
      }
    }
  }
  EXPECT_TRUE(avoided);
  EXPECT_LT(second->max_utilization, 0.5);
}

TEST(SchedulerTest, NaiveModeIgnoresAlternatives) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  SchedulerConfig config;
  config.topology_aware = false;
  Scheduler naive(host.fabric(), config);
  PerformanceTarget target;
  target.src = host.server().gpus[0];
  target.dst = host.server().ssds.back();
  target.bandwidth = Bandwidth::GBps(10);
  const auto first = naive.Place(target, {});
  ASSERT_TRUE(first.has_value());
  // Reserve its path heavily; naive mode has no alternative and fails.
  std::map<int32_t, double> reserved;
  for (const topology::DirectedLink& hop : first->path.hops) {
    reserved[topology::DirectedIndex(hop)] = 1e30;
  }
  EXPECT_FALSE(naive.Place(target, reserved).has_value());
}

TEST(SchedulerTest, HeadroomFractionEnforced) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  SchedulerConfig config;
  config.reservable_fraction = 0.5;
  Scheduler scheduler(host.fabric(), config);
  PerformanceTarget target;
  target.src = host.server().ssds[0];
  target.dst = host.server().sockets[0];
  // PCIe effective cap ~29 GB/s; 0.5 headroom -> ~14.5 max.
  target.bandwidth = Bandwidth::GBps(20);
  EXPECT_FALSE(scheduler.Place(target, {}).has_value());
  target.bandwidth = Bandwidth::GBps(10);
  EXPECT_TRUE(scheduler.Place(target, {}).has_value());
}

}  // namespace
}  // namespace mihn::manager
