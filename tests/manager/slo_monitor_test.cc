#include "src/manager/slo_monitor.h"

#include <gtest/gtest.h>

#include "src/host/host_network.h"
#include "src/workload/sources.h"

namespace mihn::manager {
namespace {

using sim::Bandwidth;
using sim::TimeNs;

struct Fixture {
  std::unique_ptr<sim::Simulation> sim;
  std::unique_ptr<HostNetwork> host;
  Manager* manager = nullptr;
  AllocationId alloc = kInvalidAllocation;
  fabric::TenantId tenant = fabric::kNoTenant;
  std::unique_ptr<workload::StreamSource> stream;

  explicit Fixture(double promise_gbps, ManagerConfig::Mode mode,
                   std::optional<TimeNs> max_latency = std::nullopt) {
    HostNetwork::Options options;
    options.autostart = HostNetwork::Autostart::kNone;
    options.manager.mode = mode;
    sim = std::make_unique<sim::Simulation>();
    host = std::make_unique<HostNetwork>(*sim, options);
    manager = &host->manager();
    tenant = manager->RegisterTenant("t");
    PerformanceTarget target;
    target.src = host->server().ssds[0];
    target.dst = host->server().dimms[0];
    target.bandwidth = Bandwidth::GBps(promise_gbps);
    target.max_latency = max_latency;
    alloc = manager->SubmitIntent(tenant, target).id;

    workload::StreamSource::Config config;
    config.src = target.src;
    config.dst = target.dst;
    config.tenant = tenant;
    stream = std::make_unique<workload::StreamSource>(host->fabric(), config);
    stream->Start();
    manager->AttachFlow(alloc, stream->flow());
  }
};

TEST(SloMonitorTest, CompliantAllocationHasNoViolations) {
  Fixture f(10, ManagerConfig::Mode::kStatic);
  f.manager->ArbitrateOnce();
  SloMonitor monitor(*f.manager, f.host->fabric());
  monitor.Start();
  f.host->RunFor(TimeNs::Millis(10));
  EXPECT_EQ(monitor.checks_performed(), 10u);
  EXPECT_TRUE(monitor.violations().empty());
  EXPECT_DOUBLE_EQ(monitor.Compliance(f.alloc), 1.0);
}

TEST(SloMonitorTest, FlagsBandwidthViolationUnderUnmanagedContention) {
  // Mode kOff: the promise exists but nothing enforces it; a rogue flow
  // steals half the link and the monitor catches the shortfall.
  Fixture f(20, ManagerConfig::Mode::kOff);
  fabric::FlowSpec rogue;
  rogue.path = *f.host->fabric().Route(f.host->server().ssds[0], f.host->server().dimms[0]);
  f.host->fabric().StartFlow(rogue);

  SloMonitor monitor(*f.manager, f.host->fabric());
  monitor.CheckOnce();
  ASSERT_FALSE(monitor.violations().empty());
  const auto& v = monitor.violations().front();
  EXPECT_EQ(v.kind, SloMonitor::Violation::Kind::kBandwidth);
  EXPECT_EQ(v.allocation, f.alloc);
  EXPECT_EQ(v.tenant, f.tenant);
  EXPECT_NEAR(v.expected, 20e9, 1e8);
  EXPECT_LT(v.actual, 16e9);
  EXPECT_LT(monitor.Compliance(f.alloc), 1.0);
  EXPECT_NE(monitor.Render().find("bandwidth"), std::string::npos);
}

TEST(SloMonitorTest, IdleTenantNeverFlagged) {
  Fixture f(20, ManagerConfig::Mode::kOff);
  // The tenant offers only 1 GB/s: no entitlement to 20, no violation.
  f.host->fabric().SetFlowDemand(f.stream->flow(), Bandwidth::GBps(1));
  SloMonitor monitor(*f.manager, f.host->fabric());
  monitor.CheckOnce();
  EXPECT_TRUE(monitor.violations().empty());
}

TEST(SloMonitorTest, FlagsLatencyViolation) {
  Fixture f(5, ManagerConfig::Mode::kOff, TimeNs::Micros(1));
  // Modest load: an elastic flow would saturate its own path and inflate
  // its latency past the bound by itself (a genuine effect, not the one
  // under test here).
  f.host->fabric().SetFlowDemand(f.stream->flow(), Bandwidth::GBps(2));
  SloMonitor monitor(*f.manager, f.host->fabric());
  monitor.CheckOnce();
  EXPECT_TRUE(monitor.violations().empty());
  // A fault blows the bound.
  const auto* alloc = f.manager->GetAllocation(f.alloc);
  f.host->fabric().InjectLinkFault(alloc->path.hops[0].link,
                                   fabric::LinkFault{1.0, TimeNs::Micros(5)});
  monitor.CheckOnce();
  ASSERT_FALSE(monitor.violations().empty());
  EXPECT_EQ(monitor.violations().front().kind, SloMonitor::Violation::Kind::kLatency);
  EXPECT_NE(monitor.Render().find("latency"), std::string::npos);
}

TEST(SloMonitorTest, UnattachedAllocationSkipped) {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  sim::Simulation sim;
  HostNetwork host(sim, options);
  auto& manager = host.manager();
  const auto tenant = manager.RegisterTenant("t");
  PerformanceTarget target;
  target.src = host.server().ssds[0];
  target.dst = host.server().dimms[0];
  target.bandwidth = Bandwidth::GBps(10);
  manager.SubmitIntent(tenant, target);
  SloMonitor monitor(manager, host.fabric());
  monitor.CheckOnce();
  EXPECT_TRUE(monitor.violations().empty());
}

TEST(SloMonitorTest, StopHaltsChecks) {
  Fixture f(10, ManagerConfig::Mode::kStatic);
  SloMonitor monitor(*f.manager, f.host->fabric());
  monitor.Start();
  f.host->RunFor(TimeNs::Millis(3));
  monitor.Stop();
  f.host->RunFor(TimeNs::Millis(5));
  EXPECT_EQ(monitor.checks_performed(), 3u);
}

TEST(SloMonitorTest, ComplianceTracksMixedOutcomes) {
  Fixture f(20, ManagerConfig::Mode::kOff);
  SloMonitor monitor(*f.manager, f.host->fabric());
  monitor.CheckOnce();  // Alone: compliant (29 > 20*0.95).
  fabric::FlowSpec rogue;
  rogue.path = *f.host->fabric().Route(f.host->server().ssds[0], f.host->server().dimms[0]);
  const auto rid = f.host->fabric().StartFlow(rogue);
  monitor.CheckOnce();  // Contended: violation.
  f.host->fabric().StopFlow(rid);
  monitor.CheckOnce();  // Recovered.
  EXPECT_NEAR(monitor.Compliance(f.alloc), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(monitor.violations().size(), 1u);
}

TEST(SloMonitorTest, ViolationLogIsBounded) {
  // A permanently-starved allocation violates on every check; over a long
  // chaos campaign the log must stay capped, with evictions accounted.
  Fixture f(20, ManagerConfig::Mode::kOff);
  fabric::FlowSpec rogue;
  rogue.path = *f.host->fabric().Route(f.host->server().ssds[0], f.host->server().dimms[0]);
  f.host->fabric().StartFlow(rogue);

  SloMonitor::Config config;
  config.period = TimeNs::Millis(1);
  config.max_violations = 16;
  SloMonitor monitor(*f.manager, f.host->fabric(), config);
  monitor.Start();
  f.host->RunFor(TimeNs::Millis(100));

  EXPECT_EQ(monitor.violations().size(), 16u);
  EXPECT_EQ(monitor.violations_dropped(), monitor.checks_performed() - 16u);
  EXPECT_EQ(monitor.violations_total(),
            monitor.violations_dropped() + monitor.violations().size());
  // The retained window is the newest violations, in order.
  EXPECT_GT(monitor.violations().back().at, monitor.violations().front().at);
}

TEST(SloMonitorTest, NothingDroppedUnderTheBound) {
  Fixture f(10, ManagerConfig::Mode::kStatic);
  f.manager->ArbitrateOnce();
  SloMonitor monitor(*f.manager, f.host->fabric());
  monitor.Start();
  f.host->RunFor(TimeNs::Millis(10));
  EXPECT_EQ(monitor.violations_dropped(), 0u);
  EXPECT_EQ(monitor.violations_total(), 0u);
}

}  // namespace
}  // namespace mihn::manager
