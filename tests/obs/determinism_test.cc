// Determinism of the trace itself (DESIGN.md §7): with profiling off, a
// trace is a pure function of (topology, workload, seed). Two identically
// seeded HostNetwork runs must export byte-identical Chrome trace JSON —
// the trace inherits the simulator's determinism guarantee, and the export
// adds no nondeterminism of its own (map-ordered tracks, fixed number
// formats, ring-order events).

#include <gtest/gtest.h>

#include <string>

#include "src/host/host_network.h"
#include "src/obs/export.h"
#include "src/workload/sources.h"

namespace mihn {
namespace {

std::string TracedRun(uint64_t seed) {
  HostNetwork::Options options;
  options.seed = seed;
  options.trace.enabled = true;
  sim::Simulation sim(seed);
  HostNetwork host(sim, options);
  const auto& server = host.server();

  // Exercise every instrumented layer: manager placement + arbitration,
  // fabric solves, telemetry ticks, sim events, and a diagnose probe.
  const auto tenant = host.manager().RegisterTenant("tenant", 1.0);
  manager::PerformanceTarget target;
  target.src = server.ssds[0];
  target.dst = server.dimms[0];
  target.bandwidth = sim::Bandwidth::GBps(4);
  const auto alloc = host.manager().SubmitIntent(tenant, target);

  workload::StreamSource::Config bulk;
  bulk.src = server.gpus[0];
  bulk.dst = server.dimms[0];
  bulk.tenant = tenant;
  workload::StreamSource stream(host.fabric(), bulk);
  stream.Start();
  if (alloc.ok()) {
    // An allocation-attached flow gives the arbiter real work.
    fabric::FlowSpec spec;
    spec.path = *host.fabric().Route(target.src, target.dst);
    spec.tenant = tenant;
    spec.demand = target.bandwidth;
    host.manager().AttachFlow(alloc.id, host.fabric().StartFlow(spec));
  }
  host.RunFor(sim::TimeNs::Millis(2));
  (void)host.diagnose().Perf(server.ssds[1], server.dimms[1]);
  host.RunFor(sim::TimeNs::Millis(1));

  return obs::ChromeTraceJson(host.tracer());
}

TEST(TraceDeterminismTest, IdenticallySeededRunsExportByteIdenticalJson) {
  const std::string first = TracedRun(7);
  const std::string second = TracedRun(7);
  EXPECT_GT(first.size(), 1000u);  // Actually captured a busy run.
  EXPECT_EQ(first, second);
}

TEST(TraceDeterminismTest, CapturesEveryInstrumentedLayer) {
  const std::string json = TracedRun(7);
  for (const char* expected :
       {"fabric.solve", "manager.place", "manager.arbitrate", "telemetry.sample",
        "diagnose.perf", "sim.queue_depth", "fabric.flows", "manager.arbiter"}) {
    EXPECT_NE(json.find(expected), std::string::npos) << expected;
  }
}

}  // namespace
}  // namespace mihn
