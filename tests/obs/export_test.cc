#include "src/obs/export.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/obs/tracer.h"
#include "src/sim/simulation.h"

namespace mihn::obs {
namespace {

using sim::TimeNs;

// Records a small, fully-determined trace: one span crossing virtual time
// (opened at 2us, closed at 4.5us) with two args, and two counter samples.
void RecordFixtureTrace(sim::Simulation& sim, Tracer& tracer) {
  std::unique_ptr<SpanGuard> window;
  sim.ScheduleAt(TimeNs::Micros(1),
                 [&] { MIHN_TRACE_COUNTER(&tracer, "sim", "sim.queue", 1); });
  sim.ScheduleAt(TimeNs::Micros(2), [&] {
    window = std::make_unique<SpanGuard>(&tracer, "fabric", "fabric.solve");
    window->Arg("flows", 2.0);
    window->Arg("rounds", 1.0);
  });
  sim.ScheduleAt(TimeNs::Micros(3),
                 [&] { MIHN_TRACE_COUNTER(&tracer, "sim", "sim.queue", 3); });
  sim.ScheduleAt(TimeNs::Nanos(4500), [&] { window.reset(); });
  sim.Run();
}

// Golden file: the Chrome trace-event export is a documented, deterministic
// format — any byte-level change here is an intentional format change and
// must update DESIGN.md §7 alongside this golden.
TEST(ChromeTraceExportTest, MatchesGolden) {
  sim::Simulation sim;
  TraceConfig config;
  config.enabled = true;
  Tracer tracer(config, &sim);
  RecordFixtureTrace(sim, tracer);
  const std::string golden =
      "{\n"
      "\"displayTimeUnit\": \"ms\",\n"
      "\"traceEvents\": [\n"
      R"json({"name": "process_name", "ph": "M", "pid": 0, "tid": 0, "args": {"name": "mihn (virtual time)"}})json"
      ",\n"
      R"json({"name": "thread_name", "ph": "M", "pid": 0, "tid": 0, "args": {"name": "fabric"}})json"
      ",\n"
      R"json({"name": "thread_name", "ph": "M", "pid": 0, "tid": 1, "args": {"name": "sim"}})json"
      ",\n"
      R"json({"name": "fabric.solve", "cat": "fabric", "ph": "X", "pid": 0, "tid": 0, "ts": 2.000, "dur": 2.500, "args": {"flows": 2, "rounds": 1}})json"
      ",\n"
      R"json({"name": "sim.queue", "cat": "sim", "ph": "C", "pid": 0, "tid": 1, "ts": 1.000, "args": {"value": 1}})json"
      ",\n"
      R"json({"name": "sim.queue", "cat": "sim", "ph": "C", "pid": 0, "tid": 1, "ts": 3.000, "args": {"value": 3}})json"
      "\n"
      "]\n"
      "}\n";
  EXPECT_EQ(ChromeTraceJson(tracer), golden);
}

TEST(ChromeTraceExportTest, EmptyTracerStillProducesValidEnvelope) {
  Tracer tracer;  // Disabled: no records, no tracks.
  const std::string json = ChromeTraceJson(tracer);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_EQ(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ChromeTraceExportTest, ProfilingModeRebasesWallTimeAndKeepsVirtualStamp) {
  TraceConfig config;
  config.enabled = true;
  config.profiling = true;
  Tracer tracer(config);
  {
    MIHN_TRACE_SCOPE(&tracer, "t", "t.s");
  }
  const std::string json = ChromeTraceJson(tracer);
  EXPECT_NE(json.find("wall-clock profile"), std::string::npos);
  // The deterministic virtual stamp rides along for cross-referencing.
  EXPECT_NE(json.find("\"vts_ns\": 0"), std::string::npos);
  // Rebased to the first stamp: the single span starts at ts 0.
  EXPECT_NE(json.find("\"ts\": 0.000"), std::string::npos);
}

TEST(ChromeTraceExportTest, EscapesSpecialCharactersInNames) {
  Tracer tracer(TraceConfig{.enabled = true});
  {
    MIHN_TRACE_SCOPE(&tracer, "cat", "quote\"and\\slash");
  }
  const std::string json = ChromeTraceJson(tracer);
  EXPECT_NE(json.find(R"(quote\"and\\slash)"), std::string::npos);
}

TEST(TraceSummaryTest, RollsUpSpansCountersAndDrops) {
  sim::Simulation sim;
  TraceConfig config;
  config.enabled = true;
  config.counter_capacity = 2;
  Tracer tracer(config, &sim);
  sim.ScheduleAt(TimeNs::Micros(1), [&] {
    MIHN_TRACE_SCOPE(&tracer, "t", "t.work");
    MIHN_TRACE_COUNTER(&tracer, "t", "t.depth", 4);
    MIHN_TRACE_COUNTER(&tracer, "t", "t.depth", 9);
    MIHN_TRACE_COUNTER(&tracer, "t", "t.depth", 6);
  });
  sim.Run();
  const std::string summary = Summary(tracer);
  EXPECT_NE(summary.find("t.work: n=1"), std::string::npos);
  EXPECT_NE(summary.find("t.depth: n=2 last=6 min=6 max=9"), std::string::npos);
  EXPECT_NE(summary.find("dropped: spans=0 counters=1"), std::string::npos);
}

TEST(TraceSummaryTest, EmptyTracerSaysSo) {
  Tracer tracer;
  EXPECT_NE(Summary(tracer).find("(no records)"), std::string::npos);
}

}  // namespace
}  // namespace mihn::obs
