#include "src/obs/tracer.h"

#include <gtest/gtest.h>

#include "src/sim/simulation.h"

namespace mihn::obs {
namespace {

using sim::TimeNs;

TraceConfig Enabled(size_t span_cap = 1 << 14, size_t counter_cap = 1 << 14) {
  TraceConfig config;
  config.enabled = true;
  config.span_capacity = span_cap;
  config.counter_capacity = counter_cap;
  return config;
}

// The core contract: a disabled tracer records nothing and allocates
// nothing — the macros are a single branch on the cached flag.
TEST(TracerTest, DisabledRecordsNothingAllocatesNothing) {
  Tracer tracer;  // Default: disabled.
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.allocated_bytes(), 0u);

  {
    MIHN_TRACE_SPAN(span, &tracer, "test", "test.span");
    span.Arg("ignored", 1.0);
    EXPECT_FALSE(span.active());
  }
  MIHN_TRACE_COUNTER(&tracer, "test", "test.counter", 42);

  EXPECT_EQ(tracer.spans_recorded(), 0u);
  EXPECT_EQ(tracer.counters_recorded(), 0u);
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_TRUE(tracer.counters().empty());
  EXPECT_EQ(tracer.allocated_bytes(), 0u);  // Still nothing.
}

TEST(TracerTest, DisabledConfigWithCapacitiesStillAllocatesNothing) {
  TraceConfig config;
  config.enabled = false;
  config.span_capacity = 1 << 20;
  config.counter_capacity = 1 << 20;
  Tracer tracer(config);
  EXPECT_EQ(tracer.allocated_bytes(), 0u);
}

TEST(TracerTest, DisabledSingletonIsInert) {
  Tracer* inert = Tracer::Disabled();
  ASSERT_NE(inert, nullptr);
  EXPECT_EQ(inert, Tracer::Disabled());  // Process-wide instance.
  EXPECT_FALSE(inert->enabled());
  MIHN_TRACE_COUNTER(Tracer::Disabled(), "test", "test.counter", 1);
  EXPECT_EQ(inert->counters_recorded(), 0u);
}

TEST(TracerTest, RecordsSpanWithArgsAndVirtualStamps) {
  sim::Simulation sim;
  Tracer tracer(Enabled(), &sim);
  EXPECT_GT(tracer.allocated_bytes(), 0u);

  sim.ScheduleAt(TimeNs::Micros(7), [&] {
    MIHN_TRACE_SPAN(span, &tracer, "fabric", "fabric.solve");
    EXPECT_TRUE(span.active());
    span.Arg("flows", 12.0);
    span.Arg("rounds", 3.0);
  });
  sim.Run();

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "fabric.solve");
  EXPECT_STREQ(spans[0].category, "fabric");
  EXPECT_EQ(spans[0].start, TimeNs::Micros(7));
  EXPECT_EQ(spans[0].end, TimeNs::Micros(7));
  ASSERT_EQ(spans[0].num_args, 2u);
  EXPECT_STREQ(spans[0].args[0].key, "flows");
  EXPECT_EQ(spans[0].args[0].value, 12.0);
  EXPECT_EQ(spans[0].args[1].value, 3.0);
  // Profiling off: no wall stamps.
  EXPECT_EQ(spans[0].wall_start_ns, 0);
  EXPECT_EQ(spans[0].wall_end_ns, 0);
}

TEST(TracerTest, ArgsBeyondCapacityAreDropped) {
  Tracer tracer(Enabled());
  {
    MIHN_TRACE_SPAN(span, &tracer, "t", "t.s");
    for (int i = 0; i < 10; ++i) {
      span.Arg("k", static_cast<double>(i));
    }
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].num_args, kMaxSpanArgs);
}

TEST(TracerTest, SpanRingWrapsOldestFirstAndCountsDrops) {
  Tracer tracer(Enabled(/*span_cap=*/4));
  for (int i = 0; i < 10; ++i) {
    MIHN_TRACE_SPAN(span, &tracer, "t", "t.s");
    span.Arg("i", static_cast<double>(i));
  }
  EXPECT_EQ(tracer.spans_recorded(), 10u);
  EXPECT_EQ(tracer.dropped_spans(), 6u);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Retained: the newest 4, oldest first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[static_cast<size_t>(i)].args[0].value, 6.0 + i);
  }
}

TEST(TracerTest, CounterRingWrapsOldestFirstAndCountsDrops) {
  Tracer tracer(Enabled(1 << 14, /*counter_cap=*/3));
  for (int i = 0; i < 8; ++i) {
    MIHN_TRACE_COUNTER(&tracer, "t", "t.c", i);
  }
  EXPECT_EQ(tracer.counters_recorded(), 8u);
  EXPECT_EQ(tracer.dropped_counters(), 5u);
  const auto counters = tracer.counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].value, 5.0);
  EXPECT_EQ(counters[1].value, 6.0);
  EXPECT_EQ(counters[2].value, 7.0);
}

TEST(TracerTest, ProfilingModeStampsWallClock) {
  TraceConfig config = Enabled();
  config.profiling = true;
  Tracer tracer(config);
  {
    MIHN_TRACE_SPAN(span, &tracer, "t", "t.s");
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GT(spans[0].wall_start_ns, 0);
  EXPECT_GE(spans[0].wall_end_ns, spans[0].wall_start_ns);

  MIHN_TRACE_COUNTER(&tracer, "t", "t.c", 1);
  ASSERT_EQ(tracer.counters().size(), 1u);
  EXPECT_GT(tracer.counters()[0].wall_ns, 0);
}

TEST(TracerTest, ClearDiscardsRecordsButKeepsCapacity) {
  Tracer tracer(Enabled(/*span_cap=*/8));
  for (int i = 0; i < 5; ++i) {
    MIHN_TRACE_SCOPE(&tracer, "t", "t.s");
  }
  MIHN_TRACE_COUNTER(&tracer, "t", "t.c", 1);
  const size_t bytes = tracer.allocated_bytes();
  EXPECT_GT(bytes, 0u);

  tracer.Clear();
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_TRUE(tracer.counters().empty());
  EXPECT_EQ(tracer.allocated_bytes(), bytes);

  // Still records after a clear.
  {
    MIHN_TRACE_SCOPE(&tracer, "t", "t.s");
  }
  EXPECT_EQ(tracer.spans().size(), 1u);
}

TEST(TracerTest, BindSimulationSuppliesVirtualClock) {
  sim::Simulation sim;
  Tracer tracer(Enabled());  // Standalone: virtual stamps are zero.
  MIHN_TRACE_COUNTER(&tracer, "t", "t.c", 1);
  EXPECT_EQ(tracer.counters()[0].at, TimeNs::Zero());

  tracer.BindSimulation(&sim);
  sim.ScheduleAt(TimeNs::Micros(3), [&] { MIHN_TRACE_COUNTER(&tracer, "t", "t.c", 2); });
  sim.Run();
  EXPECT_EQ(tracer.counters()[1].at, TimeNs::Micros(3));
}

}  // namespace
}  // namespace mihn::obs
