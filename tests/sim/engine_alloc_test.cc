// Proof of the engine's zero-allocation steady state.
//
// This binary overrides global operator new/delete with a counting shim
// (which is why it is its own test target: the override is link-global).
// The test warms a stationary schedule/fire/cancel/periodic mix until the
// event pool and calendar queue reach their high-water marks, then flips
// the counter on and drives hundreds of thousands more events. Any heap
// allocation on the dispatch path — a closure that outgrew the inline
// buffer, a re-arm that builds a fresh closure, a queue node — fails the
// test. Callbacks here are small POD functors on purpose: the claim under
// test is about the engine, so the workload must not allocate either.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "src/obs/sim_trace.h"
#include "src/obs/tracer.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"

namespace {

// mihn-check: mutable-ok(operator-new shim state is necessarily link-global)
bool g_counting = false;
// mihn-check: mutable-ok(operator-new shim state is necessarily link-global)
size_t g_allocations = 0;

void* CountedAlloc(size_t size) {
  if (g_counting) {
    ++g_allocations;
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, std::align_val_t) { return CountedAlloc(size); }
void* operator new[](size_t size, std::align_val_t) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace mihn::sim {
namespace {

// Workload state shared by the POD event functors (globals keep every
// functor pointer-free and inline-sized; the single-threaded test binary
// owns them for its whole lifetime).
// mihn-check: mutable-ok(keeps the zero-alloc functors pointer-free)
Simulation* g_sim = nullptr;
// mihn-check: mutable-ok(keeps the zero-alloc functors pointer-free)
Rng* g_rng = nullptr;
// mihn-check: mutable-ok(keeps the zero-alloc functors pointer-free)
uint64_t g_noop_fired = 0;
constexpr size_t kVictimRing = 64;
// mihn-check: mutable-ok(keeps the zero-alloc functors pointer-free)
EventHandle g_victims[kVictimRing];
// mihn-check: mutable-ok(keeps the zero-alloc functors pointer-free)
size_t g_victim_next = 0;

// Fires, does nothing. Victim fodder for the cancellation churn.
struct NoopEvent {
  void operator()() const { ++g_noop_fired; }
};

// A fixed population of these keeps rescheduling itself; each firing also
// schedules a victim and cancels the one scheduled kVictimRing firings ago
// (which may have fired already — cancelling a stale handle is the inert
// path, also worth exercising).
struct ChurnEvent {
  void operator()() const {
    g_sim->ScheduleAfter(TimeNs::Nanos(g_rng->UniformInt(1, 400)), ChurnEvent{}, "churn");
    EventHandle victim = g_sim->ScheduleAfter(TimeNs::Nanos(g_rng->UniformInt(100, 900)),
                                              NoopEvent{}, "victim");
    g_victims[g_victim_next].Cancel();
    g_victims[g_victim_next] = victim;
    g_victim_next = (g_victim_next + 1) % kVictimRing;
  }
};

TEST(EngineAllocTest, SteadyStateDispatchAllocatesNothing) {
  Simulation sim;
  // Pre-size pool and queue: with the reservation in place, zero
  // allocations is a hard guarantee rather than "after organic high-water
  // warm-up" (where occupancy hovering at a vector growth boundary could
  // trip one late doubling).
  sim.ReserveEvents(2048);
  Rng rng = sim.ForkRng(99);
  g_sim = &sim;
  g_rng = &rng;
  g_noop_fired = 0;
  g_victim_next = 0;
  for (EventHandle& h : g_victims) {
    h = EventHandle();
  }

  // Tracing on: the observer path must be allocation-free too (the tracer's
  // rings are allocated once, at construction).
  obs::TraceConfig config;
  config.enabled = true;
  obs::Tracer tracer(config, &sim);
  obs::SimTraceObserver observer(&tracer);
  sim.SetEventObserver(&observer);

  // The mix: 64 churners, a periodic, and a pre-advance hook.
  for (int i = 0; i < 64; ++i) {
    sim.ScheduleAfter(TimeNs::Nanos(rng.UniformInt(1, 400)), ChurnEvent{}, "churn");
  }
  uint64_t periodic_fired = 0;
  sim.SchedulePeriodic(TimeNs::Nanos(257), [&periodic_fired] { ++periodic_fired; },
                       "periodic");
  uint64_t hook_fired = 0;
  sim.AddPreAdvanceHook([&hook_fired] { ++hook_fired; });

  // Warm-up: let pool slab, calendar buckets and free lists hit their
  // high-water marks.
  sim.RunUntil(TimeNs::Micros(500));
  const uint64_t warm_events = sim.events_executed();
  const size_t warm_capacity = sim.event_pool_capacity();
  ASSERT_GT(warm_events, 100000u) << "warm-up did not generate enough churn";

  // Measurement window: same stationary mix, counter armed.
  g_allocations = 0;
  g_counting = true;
  sim.RunUntil(TimeNs::Micros(1000));
  g_counting = false;

  const uint64_t measured_events = sim.events_executed() - warm_events;
  EXPECT_GT(measured_events, 100000u);
  EXPECT_EQ(g_allocations, 0u)
      << "steady-state dispatch allocated (" << g_allocations << " allocations over "
      << measured_events << " events)";
  // The pool stopped growing: recycling, not appending.
  EXPECT_EQ(sim.event_pool_capacity(), warm_capacity);
  EXPECT_GT(periodic_fired, 0u);
  EXPECT_GT(hook_fired, 0u);
  EXPECT_GT(g_noop_fired, 0u);

  g_sim = nullptr;
  g_rng = nullptr;
}

// The inline buffer really is big enough for the repo's workhorse closures:
// a capture the size of the fabric's completion lambda (std::function +
// 32-byte result struct) must not fall back to the boxed path.
TEST(EngineAllocTest, RepoSizedClosuresStayInline) {
  struct FabricSizedCapture {
    void* fn_storage[4];     // std::function<void(TransferResult)> is 32 bytes.
    uint64_t result_pod[4];  // TransferResult is 32 bytes of PODs.
  };
  static_assert(sizeof(FabricSizedCapture) <= kEventFnCapacity);
  FabricSizedCapture capture{};
  EventFn fn([capture] { (void)capture; });
  EXPECT_TRUE(fn.is_inline());
}

}  // namespace
}  // namespace mihn::sim
