// Behavioral contract suite for the event engines.
//
// Every test here runs twice — once against the pooled Simulation, once
// against ReferenceSimulation — via a typed suite. The contract is the
// engine semantics both must satisfy: (time, insertion-order) dispatch,
// past-clamping, run-to-completion, pre-advance hook timing, cancellation,
// and the exact-live-count pending_events() rule. A behavior asserted here
// is a behavior the differential test can rely on being engine-independent.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/reference_simulation.h"
#include "src/sim/simulation.h"

namespace mihn::sim {
namespace {

template <typename Engine>
class EngineContractTest : public ::testing::Test {
 protected:
  Engine sim_;
  std::vector<std::string> order_;

  void Mark(const char* tag) { order_.emplace_back(tag); }
};

using EngineTypes = ::testing::Types<Simulation, ReferenceSimulation>;

class EngineNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, Simulation>) {
      return "Pooled";
    } else {
      return "Reference";
    }
  }
};

TYPED_TEST_SUITE(EngineContractTest, EngineTypes, EngineNames);

TYPED_TEST(EngineContractTest, FiresInTimeThenInsertionOrder) {
  auto& sim = this->sim_;
  sim.ScheduleAt(TimeNs::Nanos(20), [&] { this->Mark("b"); });
  sim.ScheduleAt(TimeNs::Nanos(10), [&] { this->Mark("a"); });
  sim.ScheduleAt(TimeNs::Nanos(20), [&] { this->Mark("c"); });  // Tie: after b.
  sim.Run();
  EXPECT_EQ(this->order_, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(sim.Now(), TimeNs::Nanos(20));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TYPED_TEST(EngineContractTest, PastSchedulingClampsToNow) {
  auto& sim = this->sim_;
  sim.ScheduleAt(TimeNs::Nanos(100), [&] {
    this->Mark("outer");
    // In the past relative to now=100: clamps to 100, fires this timestamp.
    sim.ScheduleAt(TimeNs::Nanos(5), [&] { this->Mark("clamped"); });
  });
  sim.ScheduleAt(TimeNs::Nanos(200), [&] { this->Mark("later"); });
  sim.Run();
  EXPECT_EQ(this->order_, (std::vector<std::string>{"outer", "clamped", "later"}));
}

TYPED_TEST(EngineContractTest, CancelPreventsExecution) {
  auto& sim = this->sim_;
  auto h = sim.ScheduleAt(TimeNs::Nanos(10), [&] { this->Mark("cancelled"); });
  sim.ScheduleAt(TimeNs::Nanos(20), [&] { this->Mark("kept"); });
  h.Cancel();
  EXPECT_TRUE(h.IsCancelled());
  sim.Run();
  EXPECT_EQ(this->order_, (std::vector<std::string>{"kept"}));
  EXPECT_EQ(sim.events_executed(), 1u);
}

// Satellite regression: pending_events() must report the exact live count
// immediately after a Cancel, before any Step pops the tombstone. The old
// engine counted lazily-deleted entries until they surfaced at the top of
// the heap.
TYPED_TEST(EngineContractTest, PendingEventsExcludesCancelledBeforeNextStep) {
  auto& sim = this->sim_;
  auto a = sim.ScheduleAt(TimeNs::Nanos(10), [] {});
  sim.ScheduleAt(TimeNs::Nanos(20), [] {});
  sim.ScheduleAt(TimeNs::Nanos(30), [] {});
  EXPECT_EQ(sim.pending_events(), 3u);
  a.Cancel();
  EXPECT_EQ(sim.pending_events(), 2u);  // No Step has run yet.
  (void)sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_executed(), 2u);
}

TYPED_TEST(EngineContractTest, CancelFromWithinOwnCallbackIsBenign) {
  auto& sim = this->sim_;
  typename TypeParam::Handle self;
  self = sim.ScheduleAt(TimeNs::Nanos(10), [&] {
    this->Mark("fired");
    self.Cancel();  // Already executing: must not corrupt engine state.
  });
  sim.ScheduleAt(TimeNs::Nanos(20), [&] { this->Mark("after"); });
  sim.Run();
  EXPECT_EQ(this->order_, (std::vector<std::string>{"fired", "after"}));
}

TYPED_TEST(EngineContractTest, PeriodicFiresOnCadence) {
  auto& sim = this->sim_;
  int fired = 0;
  std::vector<int64_t> at;
  sim.SchedulePeriodic(TimeNs::Nanos(10), [&] {
    ++fired;
    at.push_back(sim.Now().nanos());
  });
  sim.RunUntil(TimeNs::Nanos(35));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(at, (std::vector<int64_t>{10, 20, 30}));
  EXPECT_EQ(sim.Now(), TimeNs::Nanos(35));
}

TYPED_TEST(EngineContractTest, PeriodicCancelledMidCallbackStopsRearming) {
  auto& sim = this->sim_;
  int fired = 0;
  typename TypeParam::Handle h;
  h = sim.SchedulePeriodic(TimeNs::Nanos(10), [&] {
    ++fired;
    if (fired == 3) {
      h.Cancel();  // Cancel from inside the periodic's own firing.
    }
  });
  sim.RunUntil(TimeNs::Nanos(1000));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TYPED_TEST(EngineContractTest, PeriodicCancelledExternallyStopsRearming) {
  auto& sim = this->sim_;
  int fired = 0;
  auto h = sim.SchedulePeriodic(TimeNs::Nanos(10), [&] { ++fired; });
  sim.ScheduleAt(TimeNs::Nanos(25), [&] { h.Cancel(); });
  sim.RunUntil(TimeNs::Nanos(1000));
  EXPECT_EQ(fired, 2);  // t=10, t=20; cancelled at t=25.
}

TYPED_TEST(EngineContractTest, RunUntilExecutesEventsAtDeadline) {
  auto& sim = this->sim_;
  sim.ScheduleAt(TimeNs::Nanos(50), [&] { this->Mark("at_deadline"); });
  sim.ScheduleAt(TimeNs::Nanos(51), [&] { this->Mark("past_deadline"); });
  sim.RunUntil(TimeNs::Nanos(50));
  EXPECT_EQ(this->order_, (std::vector<std::string>{"at_deadline"}));
  EXPECT_EQ(sim.Now(), TimeNs::Nanos(50));
  sim.Run();
  EXPECT_EQ(this->order_.back(), "past_deadline");
}

TYPED_TEST(EngineContractTest, StopHaltsAfterCurrentEvent) {
  auto& sim = this->sim_;
  sim.ScheduleAt(TimeNs::Nanos(10), [&] {
    this->Mark("one");
    sim.Stop();
  });
  sim.ScheduleAt(TimeNs::Nanos(10), [&] { this->Mark("two"); });
  sim.Run();
  EXPECT_EQ(this->order_, (std::vector<std::string>{"one"}));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TYPED_TEST(EngineContractTest, HookFiresBeforeEachClockAdvance) {
  auto& sim = this->sim_;
  sim.AddPreAdvanceHook([&] { this->Mark("hook"); });
  sim.ScheduleAt(TimeNs::Nanos(10), [&] { this->Mark("e10"); });
  sim.ScheduleAt(TimeNs::Nanos(10), [&] { this->Mark("e10b"); });
  sim.ScheduleAt(TimeNs::Nanos(20), [&] { this->Mark("e20"); });
  sim.Run();
  // One hook firing per distinct timestamp boundary: before advancing to 10,
  // before advancing 10 -> 20, and before concluding the queue is empty.
  EXPECT_EQ(this->order_,
            (std::vector<std::string>{"hook", "e10", "e10b", "hook", "e20", "hook"}));
}

// ISSUE edge case: a pre-advance hook scheduling exactly at the RunUntil
// deadline. The deadline is inclusive, so the hook-scheduled event must
// execute within the same RunUntil call.
TYPED_TEST(EngineContractTest, HookSchedulingAtRunUntilDeadlineExecutes) {
  auto& sim = this->sim_;
  bool armed = false;
  sim.AddPreAdvanceHook([&] {
    if (!armed && sim.Now() == TimeNs::Nanos(10)) {
      armed = true;
      sim.ScheduleAt(TimeNs::Nanos(40), [&] { this->Mark("hook_scheduled"); });
    }
  });
  sim.ScheduleAt(TimeNs::Nanos(10), [&] { this->Mark("e10"); });
  sim.RunUntil(TimeNs::Nanos(40));
  EXPECT_EQ(this->order_, (std::vector<std::string>{"e10", "hook_scheduled"}));
  EXPECT_EQ(sim.Now(), TimeNs::Nanos(40));
}

// ISSUE edge case: ScheduleAt in the past during a hook. Clamps to now_ and
// fires before the clock advances — the hook's timestamp is not yet closed.
TYPED_TEST(EngineContractTest, HookSchedulingInPastFiresAtCurrentTimestamp) {
  auto& sim = this->sim_;
  bool armed = false;
  sim.AddPreAdvanceHook([&] {
    if (!armed && sim.Now() == TimeNs::Nanos(10)) {
      armed = true;
      sim.ScheduleAt(TimeNs::Nanos(3), [&] { this->Mark("clamped"); });
    }
  });
  sim.ScheduleAt(TimeNs::Nanos(10), [&] { this->Mark("e10"); });
  sim.ScheduleAt(TimeNs::Nanos(20), [&] { this->Mark("e20"); });
  sim.Run();
  EXPECT_EQ(this->order_, (std::vector<std::string>{"e10", "clamped", "e20"}));
}

TYPED_TEST(EngineContractTest, CancelledHookNeverFiresAgain) {
  auto& sim = this->sim_;
  int hook_fired = 0;
  auto h = sim.AddPreAdvanceHook([&] { ++hook_fired; });
  sim.ScheduleAt(TimeNs::Nanos(10), [&] { h.Cancel(); });
  sim.ScheduleAt(TimeNs::Nanos(20), [] {});
  sim.Run();
  // Hook fires before advancing to t=10 only; cancelled before the 10 -> 20
  // boundary.
  EXPECT_EQ(hook_fired, 1);
}

TYPED_TEST(EngineContractTest, RunUntilComposesSequentially) {
  auto& sim = this->sim_;
  int fired = 0;
  sim.SchedulePeriodic(TimeNs::Nanos(7), [&] { ++fired; });
  sim.RunUntil(TimeNs::Nanos(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), TimeNs::Nanos(10));
  sim.RunFor(TimeNs::Nanos(10));  // To t=20: fires at 14.
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), TimeNs::Nanos(20));
}

TYPED_TEST(EngineContractTest, DefaultHandleIsInert) {
  typename TypeParam::Handle h;
  EXPECT_FALSE(h.IsCancelled());
  h.Cancel();  // Must be a no-op.
  EXPECT_FALSE(h.IsCancelled());
}

TYPED_TEST(EngineContractTest, ForkRngIsDeterministicPerStream) {
  auto& sim = this->sim_;
  Rng a = sim.ForkRng(7);
  Rng b = sim.ForkRng(7);
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

}  // namespace
}  // namespace mihn::sim
