// Differential test: the pooled Simulation against ReferenceSimulation.
//
// One templated script drives both engines with identical seeded workloads —
// bulk one-shot scheduling, cancellations (external, self, mid-periodic),
// periodics, pre-advance hooks scheduling at now_, RunUntil segments and a
// Stop/resume — while a Tracer + SimTraceObserver records every firing.
// The engines must produce identical (label, time, order) firing sequences,
// identical executed/pending counts, and byte-identical Chrome-trace JSON.
// Any divergence in dispatch order, clamping, re-arm timing or the
// observer-visible queue depth shows up as a string diff here.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/sim_trace.h"
#include "src/obs/tracer.h"
#include "src/sim/random.h"
#include "src/sim/reference_simulation.h"
#include "src/sim/simulation.h"

namespace mihn::sim {
namespace {

struct ScriptResult {
  // "label@time" per firing, in execution order.
  std::vector<std::string> firings;
  uint64_t executed = 0;
  size_t pending_at_stop = 0;
  int64_t final_now = 0;
  std::string trace_json;
};

// Static labels: engines store the pointer, never a copy.
constexpr const char* kOneShotLabels[] = {"ev.alpha", "ev.beta", "ev.gamma",
                                          "ev.delta"};

template <typename Engine>
ScriptResult RunScript(uint64_t seed) {
  Engine sim(seed);
  obs::TraceConfig config;
  config.enabled = true;
  obs::Tracer tracer(config, &sim);
  obs::SimTraceObserver observer(&tracer);
  sim.SetEventObserver(&observer);

  ScriptResult out;
  auto record = [&](const char* label) {
    out.firings.push_back(std::string(label) + "@" +
                          std::to_string(sim.Now().nanos()));
  };

  // The script's own randomness is seeded identically for both engines and
  // consumed in identical order (same code path), so both see the same
  // workload.
  Rng rng(seed * 1000003);

  // Phase 1: 200 one-shots across [0, 5000]ns; every third cancelled.
  std::vector<typename Engine::Handle> handles;
  for (int i = 0; i < 200; ++i) {
    const char* label = kOneShotLabels[i % 4];
    const TimeNs at = TimeNs::Nanos(rng.UniformInt(0, 5000));
    handles.push_back(sim.ScheduleAt(at, [&record, label] { record(label); }, label));
  }
  for (size_t i = 0; i < handles.size(); i += 3) {
    handles[i].Cancel();
  }

  // A periodic that cancels itself mid-callback on its 12th firing.
  int self_count = 0;
  typename Engine::Handle self_periodic;
  self_periodic = sim.SchedulePeriodic(
      TimeNs::Nanos(97),
      [&] {
        record("periodic.self");
        if (++self_count == 12) {
          self_periodic.Cancel();
        }
      },
      "periodic.self");

  // A periodic cancelled externally at t=2000.
  auto ext_periodic = sim.SchedulePeriodic(
      TimeNs::Nanos(151), [&] { record("periodic.ext"); }, "periodic.ext");
  sim.ScheduleAt(TimeNs::Nanos(2000), [&] {
    record("canceller");
    ext_periodic.Cancel();
  }, "canceller");

  // A pre-advance hook that occasionally schedules at now_ (the "flush
  // spawns same-timestamp work" pattern) and once schedules in the past
  // (exercising the clamp inside a hook).
  int hook_spawns = 0;
  sim.AddPreAdvanceHook([&] {
    if (hook_spawns < 5 && sim.Now().nanos() > 500 * (hook_spawns + 1)) {
      ++hook_spawns;
      sim.ScheduleAt(sim.Now(), [&] { record("hook.spawn"); }, "hook.spawn");
    }
    if (hook_spawns == 3 && sim.Now().nanos() > 1700) {
      ++hook_spawns;  // Reuse the counter so this fires exactly once.
      sim.ScheduleAt(TimeNs::Nanos(1), [&] { record("hook.past"); }, "hook.past");
    }
  });

  // Phase 2: run to 2500, schedule a second wave (some in the past — they
  // clamp to now), then a Stop/resume, then drain.
  sim.RunUntil(TimeNs::Nanos(2500));
  for (int i = 0; i < 100; ++i) {
    const char* label = kOneShotLabels[(i + 1) % 4];
    const TimeNs at = TimeNs::Nanos(rng.UniformInt(2000, 6000));
    handles.push_back(sim.ScheduleAt(at, [&record, label] { record(label); }, label));
  }
  for (size_t i = 200; i < handles.size(); i += 5) {
    handles[i].Cancel();
  }

  sim.ScheduleAt(TimeNs::Nanos(3000), [&] {
    record("stopper");
    sim.Stop();
  }, "stopper");
  sim.Run();  // Halts at the stopper.
  out.pending_at_stop = sim.pending_events();

  sim.RunUntil(TimeNs::Nanos(5500));
  sim.Run();  // Drain.

  out.executed = sim.events_executed();
  out.final_now = sim.Now().nanos();
  out.trace_json = obs::ChromeTraceJson(tracer);
  return out;
}

class EngineDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineDifferentialTest, IdenticalFiringSequenceAndTrace) {
  const uint64_t seed = GetParam();
  const ScriptResult pooled = RunScript<Simulation>(seed);
  const ScriptResult reference = RunScript<ReferenceSimulation>(seed);

  ASSERT_EQ(pooled.firings.size(), reference.firings.size());
  for (size_t i = 0; i < pooled.firings.size(); ++i) {
    ASSERT_EQ(pooled.firings[i], reference.firings[i]) << "first divergence at firing " << i;
  }
  EXPECT_EQ(pooled.executed, reference.executed);
  EXPECT_EQ(pooled.pending_at_stop, reference.pending_at_stop);
  EXPECT_EQ(pooled.final_now, reference.final_now);

  // Byte-identical export: same spans, same counters (including the
  // observer's queue-depth samples), same formatting.
  EXPECT_EQ(pooled.trace_json, reference.trace_json);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferentialTest,
                         ::testing::Values(1u, 2u, 42u, 1234u, 987654321u));

// The pooled engine must be deterministic run-to-run, not merely
// reference-matching: two pooled runs of the same script are byte-identical.
TEST(EngineDifferentialTest, PooledEngineIsSelfDeterministic) {
  const ScriptResult a = RunScript<Simulation>(7);
  const ScriptResult b = RunScript<Simulation>(7);
  EXPECT_EQ(a.firings, b.firings);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

}  // namespace
}  // namespace mihn::sim
