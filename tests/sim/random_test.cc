#include "src/sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace mihn::sim {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng root(7);
  Rng child1 = root.Fork(1);
  Rng child2 = root.Fork(2);
  Rng child1_again = Rng(7).Fork(1);
  EXPECT_EQ(child1.NextU64(), child1_again.NextU64());
  EXPECT_NE(child1.NextU64(), child2.NextU64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1'000; ++i) {
    const double d = rng.Uniform(-5.0, 11.0);
    EXPECT_GE(d, -5.0);
    EXPECT_LT(d, 11.0);
  }
}

TEST(RngTest, UniformIntInclusiveAndCoversRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const int64_t v = rng.UniformInt(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(6);
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
  EXPECT_EQ(rng.UniformInt(9, 2), 9);  // hi < lo clamps to lo.
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesP) {
  Rng rng(8);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(10);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.BoundedPareto(100.0, 10'000.0, 1.3);
    EXPECT_GE(x, 100.0 * 0.999);
    EXPECT_LE(x, 10'000.0 * 1.001);
  }
}

TEST(RngTest, ZipfSkewPrefersLowRanks) {
  Rng rng(12);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50'000; ++i) {
    const int64_t v = rng.Zipf(10, 1.2);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 10);
    ++counts[static_cast<size_t>(v)];
  }
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(RngTest, ZipfHandlesTrivialN) {
  Rng rng(13);
  EXPECT_EQ(rng.Zipf(1, 1.0), 0);
  EXPECT_EQ(rng.Zipf(0, 1.0), 0);
}

TEST(RngTest, ZipfRebuildsTableOnParamChange) {
  Rng rng(14);
  // Exercise the cache-invalidation path: alternate (n, s) pairs.
  for (int i = 0; i < 10; ++i) {
    const int64_t a = rng.Zipf(5, 1.0);
    EXPECT_LT(a, 5);
    const int64_t b = rng.Zipf(50, 0.5);
    EXPECT_LT(b, 50);
  }
}

}  // namespace
}  // namespace mihn::sim
