#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace mihn::sim {
namespace {

TEST(SimulationTest, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.Now(), TimeNs::Zero());
  EXPECT_EQ(sim.events_executed(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationTest, RunAdvancesClockToEventTimes) {
  Simulation sim;
  std::vector<int64_t> fired_at;
  sim.ScheduleAt(TimeNs::Nanos(100), [&] { fired_at.push_back(sim.Now().nanos()); });
  sim.ScheduleAt(TimeNs::Nanos(50), [&] { fired_at.push_back(sim.Now().nanos()); });
  sim.ScheduleAt(TimeNs::Nanos(200), [&] { fired_at.push_back(sim.Now().nanos()); });
  sim.Run();
  EXPECT_EQ(fired_at, (std::vector<int64_t>{50, 100, 200}));
  EXPECT_EQ(sim.Now(), TimeNs::Nanos(200));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulationTest, TiesFireInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(TimeNs::Nanos(10), [&] { order.push_back(1); });
  sim.ScheduleAt(TimeNs::Nanos(10), [&] { order.push_back(2); });
  sim.ScheduleAt(TimeNs::Nanos(10), [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, ScheduleAfterIsRelative) {
  Simulation sim;
  TimeNs inner_fire = TimeNs::Zero();
  sim.ScheduleAt(TimeNs::Micros(1), [&] {
    sim.ScheduleAfter(TimeNs::Micros(2), [&] { inner_fire = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_fire, TimeNs::Micros(3));
}

TEST(SimulationTest, SchedulingInThePastClampsToNow) {
  Simulation sim;
  TimeNs fired = TimeNs::Max();
  sim.ScheduleAt(TimeNs::Micros(5), [&] {
    sim.ScheduleAt(TimeNs::Micros(1), [&] { fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired, TimeNs::Micros(5));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  EventHandle h = sim.ScheduleAt(TimeNs::Nanos(10), [&] { fired = true; });
  h.Cancel();
  EXPECT_TRUE(h.IsCancelled());
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelCopyCancelsOriginal) {
  Simulation sim;
  bool fired = false;
  EventHandle h = sim.ScheduleAt(TimeNs::Nanos(10), [&] { fired = true; });
  EventHandle copy = h;
  copy.Cancel();
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.IsCancelled());
  h.Cancel();  // Must not crash.
  EXPECT_FALSE(h.IsCancelled());
}

TEST(SimulationTest, PeriodicFiresRepeatedlyUntilCancelled) {
  Simulation sim;
  int fires = 0;
  EventHandle h = sim.SchedulePeriodic(TimeNs::Micros(1), [&] {
    ++fires;
    if (fires == 5) {
      h.Cancel();
    }
  });
  sim.RunUntil(TimeNs::Millis(1));
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(sim.Now(), TimeNs::Millis(1));
}

TEST(SimulationTest, PeriodicPeriodIsExact) {
  Simulation sim;
  std::vector<int64_t> times;
  EventHandle h = sim.SchedulePeriodic(TimeNs::Nanos(250), [&] {
    times.push_back(sim.Now().nanos());
  });
  sim.RunUntil(TimeNs::Nanos(1000));
  h.Cancel();
  EXPECT_EQ(times, (std::vector<int64_t>{250, 500, 750, 1000}));
}

TEST(SimulationTest, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulation sim;
  sim.RunUntil(TimeNs::Micros(7));
  EXPECT_EQ(sim.Now(), TimeNs::Micros(7));
}

TEST(SimulationTest, RunUntilDoesNotExecuteLaterEvents) {
  Simulation sim;
  bool late_fired = false;
  sim.ScheduleAt(TimeNs::Micros(10), [&] { late_fired = true; });
  sim.RunUntil(TimeNs::Micros(5));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.Now(), TimeNs::Micros(5));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_TRUE(late_fired);
}

TEST(SimulationTest, RunUntilExecutesEventsAtDeadline) {
  Simulation sim;
  bool fired = false;
  sim.ScheduleAt(TimeNs::Micros(5), [&] { fired = true; });
  sim.RunUntil(TimeNs::Micros(5));
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, RunForComposes) {
  Simulation sim;
  sim.RunFor(TimeNs::Micros(3));
  sim.RunFor(TimeNs::Micros(4));
  EXPECT_EQ(sim.Now(), TimeNs::Micros(7));
}

TEST(SimulationTest, StopHaltsRun) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(TimeNs::Nanos(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.ScheduleAt(TimeNs::Nanos(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  // A subsequent Run resumes.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, EventsCanScheduleManyNestedEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 1000) {
      sim.ScheduleAfter(TimeNs::Nanos(1), chain);
    }
  };
  sim.ScheduleAt(TimeNs::Zero(), chain);
  sim.Run();
  EXPECT_EQ(count, 1000);
  EXPECT_EQ(sim.Now(), TimeNs::Nanos(999));
}

TEST(SimulationTest, PreAdvanceHookFiresBetweenTimestampsNotWithin) {
  Simulation sim;
  std::vector<int> order;
  sim.AddPreAdvanceHook([&] { order.push_back(-1); });
  // Two events at t=10 (one timestamp), one at t=20.
  sim.ScheduleAt(TimeNs::Nanos(10), [&] { order.push_back(1); });
  sim.ScheduleAt(TimeNs::Nanos(10), [&] { order.push_back(2); });
  sim.ScheduleAt(TimeNs::Nanos(20), [&] { order.push_back(3); });
  sim.Run();
  // Hook: before advancing to 10, between 10 and 20, and when the queue
  // drains — never between the two t=10 events.
  EXPECT_EQ(order, (std::vector<int>{-1, 1, 2, -1, 3, -1}));
}

TEST(SimulationTest, PreAdvanceHookMayScheduleEvents) {
  Simulation sim;
  int flushed = 0;
  bool event_ran = false;
  sim.AddPreAdvanceHook([&] {
    if (flushed == 0) {
      ++flushed;
      sim.ScheduleAfter(TimeNs::Nanos(5), [&] { event_ran = true; });
    }
  });
  sim.ScheduleAt(TimeNs::Nanos(10), [] {});
  sim.Run();
  EXPECT_TRUE(event_ran);  // Hook-scheduled event executed, not dropped.
}

TEST(SimulationTest, PreAdvanceHookFiresBeforeRunUntilClampsClock) {
  Simulation sim;
  TimeNs hook_time = TimeNs::Nanos(-1);
  sim.AddPreAdvanceHook([&] { hook_time = sim.Now(); });
  sim.ScheduleAt(TimeNs::Nanos(10), [] {});
  sim.ScheduleAt(TimeNs::Nanos(500), [] {});  // Beyond the deadline.
  sim.RunUntil(TimeNs::Nanos(100));
  // The flush happened at t=10 (the last executed timestamp), before the
  // clock was advanced to the deadline.
  EXPECT_EQ(hook_time, TimeNs::Nanos(10));
  EXPECT_EQ(sim.Now(), TimeNs::Nanos(100));
}

TEST(SimulationTest, CancelledPreAdvanceHookStopsFiring) {
  Simulation sim;
  int fired = 0;
  EventHandle handle = sim.AddPreAdvanceHook([&] { ++fired; });
  sim.ScheduleAt(TimeNs::Nanos(10), [] {});
  sim.Run();
  const int fired_before = fired;
  EXPECT_GT(fired_before, 0);
  handle.Cancel();
  sim.ScheduleAt(TimeNs::Nanos(20), [] {});
  sim.Run();
  EXPECT_EQ(fired, fired_before);
}

TEST(SimulationTest, ForkRngIsDeterministicPerSeed) {
  Simulation a(99);
  Simulation b(99);
  EXPECT_EQ(a.ForkRng(5).NextU64(), b.ForkRng(5).NextU64());
  Simulation c(100);
  EXPECT_NE(a.ForkRng(5).NextU64(), c.ForkRng(5).NextU64());
}

}  // namespace
}  // namespace mihn::sim
