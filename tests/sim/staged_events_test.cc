#include "src/sim/staged_events.h"

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace mihn::sim {
namespace {

// One recorded firing: (virtual time in ns, event id).
using Firing = std::pair<int64_t, int>;

// The contract the fleet's parallel settle rests on: a script of queue
// operations staged into buffers and replayed serially produces the exact
// event sequence — firing order, sequence-number tie-breaks, pool slot
// reuse — of the same script applied directly.
TEST(StagedEventsTest, StagedThenAppliedMatchesDirectSchedulingBitForBit) {
  Simulation direct(7);
  Simulation staged(7);
  std::vector<Firing> direct_log;
  std::vector<Firing> staged_log;

  const auto record = [](std::vector<Firing>* log, Simulation* sim, int id) {
    return [log, sim, id] { log->emplace_back(sim->Now().nanos(), id); };
  };

  // A script with same-timestamp ties (ids 1 and 2 both at 10ns) so the
  // insertion-order tie-break is actually exercised, plus a cancellation.
  // Direct path: apply in script order.
  EventHandle direct_doomed;
  direct.ScheduleAfter(TimeNs::Nanos(10), record(&direct_log, &direct, 1), "a");
  direct_doomed = direct.ScheduleAfter(TimeNs::Nanos(20), record(&direct_log, &direct, 9), "d");
  direct.ScheduleAfter(TimeNs::Nanos(10), record(&direct_log, &direct, 2), "b");
  direct_doomed.Cancel();
  direct.ScheduleAfter(TimeNs::Nanos(30), record(&direct_log, &direct, 3), "c");

  // Staged path: the same script, recorded into two buffers (as two
  // parallel workers would) and replayed in the same order.
  StagedEvents buf_a;
  StagedEvents buf_b;
  EventHandle staged_doomed;
  buf_a.StageScheduleAfter(TimeNs::Nanos(10), record(&staged_log, &staged, 1), "a", nullptr);
  buf_a.StageScheduleAfter(TimeNs::Nanos(20), record(&staged_log, &staged, 9), "d",
                           &staged_doomed);
  buf_b.StageScheduleAfter(TimeNs::Nanos(10), record(&staged_log, &staged, 2), "b", nullptr);
  EXPECT_EQ(buf_a.size(), 2u);
  buf_a.ApplyTo(staged);
  // The out-handle is only valid once its buffer is applied; cancel it via
  // a staged cancel in the second buffer, like a later host would.
  buf_b.StageCancel(staged_doomed);
  buf_b.StageScheduleAfter(TimeNs::Nanos(30), record(&staged_log, &staged, 3), "c", nullptr);
  buf_b.ApplyTo(staged);
  EXPECT_TRUE(buf_a.empty());
  EXPECT_TRUE(buf_b.empty());

  direct.Run();
  staged.Run();

  EXPECT_EQ(staged_log, direct_log);
  const std::vector<Firing> expected = {{10, 1}, {10, 2}, {30, 3}};
  EXPECT_EQ(direct_log, expected);
  EXPECT_EQ(staged.events_executed(), direct.events_executed());
  EXPECT_EQ(staged.pending_events(), direct.pending_events());
  // Slot reuse parity: the cancelled event's slot is reclaimed identically.
  EXPECT_EQ(staged.event_pool_capacity(), direct.event_pool_capacity());
}

TEST(StagedEventsTest, CancelThenScheduleOrderIsPreserved) {
  // The fabric's settle stages cancel-then-schedule per host; the replay
  // must keep that order so the cancelled slot is reused by the new event
  // exactly as the direct path would (LIFO free list).
  Simulation direct(1);
  Simulation staged(1);

  EventHandle direct_old = direct.ScheduleAfter(TimeNs::Nanos(50), [] {}, "old");
  direct_old.Cancel();
  direct.ScheduleAfter(TimeNs::Nanos(60), [] {}, "new");

  EventHandle staged_old = staged.ScheduleAfter(TimeNs::Nanos(50), [] {}, "old");
  StagedEvents buf;
  EventHandle staged_new;
  buf.StageCancel(staged_old);
  buf.StageScheduleAfter(TimeNs::Nanos(60), [] {}, "new", &staged_new);
  buf.ApplyTo(staged);

  EXPECT_EQ(staged.pending_events(), direct.pending_events());
  EXPECT_EQ(staged.event_pool_capacity(), direct.event_pool_capacity());
  EXPECT_EQ(staged.Run().nanos(), direct.Run().nanos());
}

TEST(StagedEventsTest, OutHandleCancelsTheAppliedEvent) {
  Simulation sim(1);
  int fired = 0;
  StagedEvents buf;
  EventHandle handle;
  buf.StageScheduleAfter(TimeNs::Nanos(5), [&fired] { ++fired; }, "x", &handle);
  buf.ApplyTo(sim);
  EXPECT_EQ(sim.pending_events(), 1u);
  handle.Cancel();
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(StagedEventsTest, CancellingNullHandleIsANoop) {
  Simulation sim(1);
  StagedEvents buf;
  buf.StageCancel(EventHandle());
  buf.ApplyTo(sim);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(StagedEventsTest, BufferIsReusableAfterApply) {
  Simulation sim(1);
  int fired = 0;
  StagedEvents buf;
  for (int round = 0; round < 3; ++round) {
    buf.StageScheduleAfter(TimeNs::Nanos(1), [&fired] { ++fired; }, "r", nullptr);
    buf.ApplyTo(sim);
    EXPECT_TRUE(buf.empty());
    sim.RunFor(TimeNs::Nanos(2));
  }
  EXPECT_EQ(fired, 3);
}

TEST(StagedEventsTest, ClearDropsStagedOpsWithoutApplying) {
  Simulation sim(1);
  StagedEvents buf;
  buf.StageScheduleAfter(TimeNs::Nanos(5), [] {}, "x", nullptr);
  EXPECT_EQ(buf.size(), 1u);
  buf.Clear();
  EXPECT_TRUE(buf.empty());
  buf.ApplyTo(sim);
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace mihn::sim
