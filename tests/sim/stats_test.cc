#include "src/sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/random.h"

namespace mihn::sim {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-10, 10);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsNoop) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(42.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValueAllPercentiles) {
  Histogram h;
  h.Add(1000.0);
  EXPECT_EQ(h.count(), 1);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_NEAR(h.Percentile(q), 1000.0, 1000.0 * 0.02) << "q=" << q;
  }
}

TEST(HistogramTest, BoundedRelativeError) {
  Histogram h;
  Rng rng(31);
  std::vector<double> values;
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.Uniform(50.0, 5'000'000.0);
    values.push_back(v);
    h.Add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = values[static_cast<size_t>(q * (values.size() - 1))];
    EXPECT_NEAR(h.Percentile(q), exact, exact * 0.03) << "q=" << q;
  }
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Add(10.0);
  h.Add(20.0);
  h.Add(60.0);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
  EXPECT_EQ(h.min(), 10.0);
  EXPECT_EQ(h.max(), 60.0);
}

TEST(HistogramTest, SubUnitValuesLandInFirstBucket) {
  Histogram h;
  h.Add(0.0);
  h.Add(0.5);
  EXPECT_EQ(h.count(), 2);
  EXPECT_LE(h.Percentile(1.0), 1.0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Add(-5.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0.0);
}

TEST(HistogramTest, MergeMatchesCombined) {
  Histogram a;
  Histogram b;
  Histogram all;
  Rng rng(41);
  for (int i = 0; i < 5'000; ++i) {
    const double v = rng.BoundedPareto(100, 100'000, 1.1);
    (i % 2 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.Percentile(0.99), all.Percentile(0.99));
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(123.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, PercentilesMonotoneInQ) {
  Histogram h;
  Rng rng(51);
  for (int i = 0; i < 10'000; ++i) {
    h.Add(rng.Exponential(0.001));
  }
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double p = h.Percentile(q);
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(5.0);
  h.Add(10.0);
  const std::string s = h.Summary("us");
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("us"), std::string::npos);
}

TEST(HistogramTest, HandlesVeryLargeValues) {
  Histogram h;
  h.Add(1e15);
  h.Add(1e16);
  EXPECT_EQ(h.count(), 2);
  EXPECT_GE(h.Percentile(1.0), 1e15);
}

}  // namespace
}  // namespace mihn::sim
