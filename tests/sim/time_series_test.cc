#include "src/sim/time_series.h"

#include <gtest/gtest.h>

namespace mihn::sim {
namespace {

TEST(TimeSeriesTest, StartsEmpty) {
  TimeSeries ts(8);
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.size(), 0u);
  EXPECT_EQ(ts.capacity(), 8u);
  EXPECT_EQ(ts.dropped(), 0u);
}

TEST(TimeSeriesTest, AppendAndAccess) {
  TimeSeries ts(8);
  ts.Append(TimeNs::Nanos(10), 1.0);
  ts.Append(TimeNs::Nanos(20), 2.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.Oldest().value, 1.0);
  EXPECT_EQ(ts.Latest().value, 2.0);
  EXPECT_EQ(ts.At(1).time, TimeNs::Nanos(20));
}

TEST(TimeSeriesTest, OverflowDropsOldest) {
  TimeSeries ts(3);
  for (int i = 0; i < 5; ++i) {
    ts.Append(TimeNs::Nanos(i), static_cast<double>(i));
  }
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.dropped(), 2u);
  EXPECT_EQ(ts.Oldest().value, 2.0);
  EXPECT_EQ(ts.Latest().value, 4.0);
}

TEST(TimeSeriesTest, CapacityOneKeepsLatest) {
  TimeSeries ts(1);
  ts.Append(TimeNs::Nanos(1), 1.0);
  ts.Append(TimeNs::Nanos(2), 2.0);
  EXPECT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts.Latest().value, 2.0);
}

TEST(TimeSeriesTest, ZeroCapacityClampedToOne) {
  TimeSeries ts(0);
  EXPECT_EQ(ts.capacity(), 1u);
  ts.Append(TimeNs::Nanos(1), 7.0);
  EXPECT_EQ(ts.Latest().value, 7.0);
}

TEST(TimeSeriesTest, ForEachVisitsOldestFirst) {
  TimeSeries ts(4);
  for (int i = 0; i < 6; ++i) {
    ts.Append(TimeNs::Nanos(i), static_cast<double>(i));
  }
  std::vector<double> seen;
  ts.ForEach([&](const TimePoint& p) { seen.push_back(p.value); });
  EXPECT_EQ(seen, (std::vector<double>{2.0, 3.0, 4.0, 5.0}));
}

TEST(TimeSeriesTest, StatsSinceFiltersOnTime) {
  TimeSeries ts(16);
  for (int i = 0; i < 10; ++i) {
    ts.Append(TimeNs::Micros(i), static_cast<double>(i));
  }
  const RunningStats s = ts.StatsSince(TimeNs::Micros(5));
  EXPECT_EQ(s.count(), 5);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
}

TEST(TimeSeriesTest, MeanOfLast) {
  TimeSeries ts(16);
  for (int i = 1; i <= 5; ++i) {
    ts.Append(TimeNs::Nanos(i), static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(ts.MeanOfLast(2), 4.5);
  EXPECT_DOUBLE_EQ(ts.MeanOfLast(100), 3.0);
  EXPECT_EQ(TimeSeries(4).MeanOfLast(3), 0.0);
}

TEST(TimeSeriesTest, WindowCopiesTail) {
  TimeSeries ts(16);
  for (int i = 0; i < 8; ++i) {
    ts.Append(TimeNs::Nanos(i * 10), static_cast<double>(i));
  }
  const auto window = ts.Window(TimeNs::Nanos(50));
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window[0].value, 5.0);
  EXPECT_EQ(window[2].value, 7.0);
}

TEST(TimeSeriesTest, ClearResets) {
  TimeSeries ts(4);
  for (int i = 0; i < 10; ++i) {
    ts.Append(TimeNs::Nanos(i), 1.0);
  }
  ts.Clear();
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.dropped(), 0u);
  ts.Append(TimeNs::Nanos(99), 9.0);
  EXPECT_EQ(ts.Oldest().value, 9.0);
}

}  // namespace
}  // namespace mihn::sim
