#include "src/sim/time.h"

#include <gtest/gtest.h>

namespace mihn::sim {
namespace {

TEST(TimeNsTest, FactoriesProduceExpectedNanos) {
  EXPECT_EQ(TimeNs::Nanos(7).nanos(), 7);
  EXPECT_EQ(TimeNs::Micros(3).nanos(), 3000);
  EXPECT_EQ(TimeNs::Millis(2).nanos(), 2'000'000);
  EXPECT_EQ(TimeNs::Seconds(1).nanos(), 1'000'000'000);
  EXPECT_EQ(TimeNs::Zero().nanos(), 0);
}

TEST(TimeNsTest, FromSecondsFRounds) {
  EXPECT_EQ(TimeNs::FromSecondsF(1.5).nanos(), 1'500'000'000);
  EXPECT_EQ(TimeNs::FromSecondsF(0.0000005).nanos(), 500);
}

TEST(TimeNsTest, Arithmetic) {
  const TimeNs a = TimeNs::Micros(10);
  const TimeNs b = TimeNs::Micros(4);
  EXPECT_EQ((a + b).nanos(), 14'000);
  EXPECT_EQ((a - b).nanos(), 6'000);
  EXPECT_EQ((a * 3).nanos(), 30'000);
  EXPECT_EQ((a / 2).nanos(), 5'000);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(TimeNsTest, CompoundAssignment) {
  TimeNs t = TimeNs::Nanos(100);
  t += TimeNs::Nanos(50);
  EXPECT_EQ(t.nanos(), 150);
  t -= TimeNs::Nanos(150);
  EXPECT_EQ(t, TimeNs::Zero());
}

TEST(TimeNsTest, Comparisons) {
  EXPECT_LT(TimeNs::Nanos(1), TimeNs::Nanos(2));
  EXPECT_LE(TimeNs::Nanos(2), TimeNs::Nanos(2));
  EXPECT_GT(TimeNs::Micros(1), TimeNs::Nanos(999));
  EXPECT_EQ(TimeNs::Millis(1), TimeNs::Micros(1000));
  EXPECT_NE(TimeNs::Millis(1), TimeNs::Micros(1001));
}

TEST(TimeNsTest, ConversionAccessors) {
  const TimeNs t = TimeNs::Nanos(2'500);
  EXPECT_DOUBLE_EQ(t.ToMicrosF(), 2.5);
  EXPECT_DOUBLE_EQ(TimeNs::Millis(1500).ToSecondsF(), 1.5);
  EXPECT_DOUBLE_EQ(TimeNs::Micros(2500).ToMillisF(), 2.5);
}

TEST(TimeNsTest, ToStringPicksUnits) {
  EXPECT_EQ(TimeNs::Nanos(999).ToString(), "999ns");
  EXPECT_EQ(TimeNs::Nanos(2500).ToString(), "2.50us");
  EXPECT_EQ(TimeNs::Micros(2500).ToString(), "2.50ms");
  EXPECT_EQ(TimeNs::Millis(2500).ToString(), "2.500s");
}

TEST(TimeNsTest, ScaleRoundsDown) {
  EXPECT_EQ(Scale(TimeNs::Nanos(100), 1.5).nanos(), 150);
  EXPECT_EQ(Scale(TimeNs::Nanos(3), 0.5).nanos(), 1);
}

TEST(TimeNsTest, MaxIsLargerThanAnyPracticalTime) {
  EXPECT_GT(TimeNs::Max(), TimeNs::Seconds(1'000'000'000));
}

}  // namespace
}  // namespace mihn::sim
