#include "src/sim/units.h"

#include <limits>

#include <gtest/gtest.h>

namespace mihn::sim {
namespace {

TEST(BandwidthTest, UnitConversions) {
  EXPECT_DOUBLE_EQ(Bandwidth::Gbps(8).bytes_per_sec(), 1e9);
  EXPECT_DOUBLE_EQ(Bandwidth::GBps(1).bytes_per_sec(), 1e9);
  EXPECT_DOUBLE_EQ(Bandwidth::Mbps(8).bytes_per_sec(), 1e6);
  EXPECT_DOUBLE_EQ(Bandwidth::Gbps(200).ToGbps(), 200.0);
  EXPECT_DOUBLE_EQ(Bandwidth::GBps(25).ToGBps(), 25.0);
  // The factor-of-8 trap: 256 Gbps is 32 GB/s.
  EXPECT_DOUBLE_EQ(Bandwidth::Gbps(256).ToGBps(), 32.0);
}

TEST(BandwidthTest, ConversionRoundTrips) {
  // Every factory must invert through its matching accessor exactly: these
  // values have exact binary representations, so any deviation is a wrong
  // conversion factor, not float noise.
  for (const double v : {0.0, 1.0, 8.0, 12.5, 100.0, 256.0, 400.0}) {
    EXPECT_DOUBLE_EQ(Bandwidth::Gbps(v).ToGbps(), v) << v;
    EXPECT_DOUBLE_EQ(Bandwidth::GBps(v).ToGBps(), v) << v;
    EXPECT_DOUBLE_EQ(Bandwidth::BytesPerSec(v).bytes_per_sec(), v) << v;
    // Mbps -> Gbps is a factor of exactly 1000.
    EXPECT_DOUBLE_EQ(Bandwidth::Mbps(v * 1000.0).ToGbps(), v) << v;
  }
  // Cross-unit: 8 Gbps is exactly 1 GB/s in both directions.
  EXPECT_DOUBLE_EQ(Bandwidth::Gbps(8).ToGBps(), 1.0);
  EXPECT_DOUBLE_EQ(Bandwidth::GBps(1).ToGbps(), 8.0);
}

#ifdef MIHN_ENABLE_INVARIANT_CHECKS
TEST(BandwidthDeathTest, NegativeConstructionIsRejected) {
  // Rates are magnitudes: a negative input to any factory is a unit bug
  // upstream (e.g. a subtraction that should have been clamped), not a
  // representable bandwidth. IsZero() would otherwise mask it forever.
  EXPECT_DEATH(Bandwidth::BytesPerSec(-1.0), "MIHN_CHECK failed");
  EXPECT_DEATH(Bandwidth::Gbps(-0.5), "MIHN_CHECK failed");
  EXPECT_DEATH(Bandwidth::GBps(-2.0), "MIHN_CHECK failed");
  EXPECT_DEATH(Bandwidth::Mbps(-100.0), "MIHN_CHECK failed");
}

TEST(BandwidthDeathTest, NaNConstructionIsRejected) {
  EXPECT_DEATH(Bandwidth::BytesPerSec(std::numeric_limits<double>::quiet_NaN()),
               "MIHN_CHECK failed");
}
#endif  // MIHN_ENABLE_INVARIANT_CHECKS

TEST(BandwidthTest, DifferencesMayGoNegativeAndReadAsEmpty) {
  // Headroom arithmetic is allowed to underflow zero; IsZero() treats the
  // result as an empty rate.
  const Bandwidth deficit = Bandwidth::GBps(1) - Bandwidth::GBps(2);
  EXPECT_TRUE(deficit.IsZero());
  EXPECT_LT(deficit.bytes_per_sec(), 0.0);
}

TEST(BandwidthTest, TransferTime) {
  // 1 GB/s moving 1e9 bytes takes 1 second.
  EXPECT_EQ(Bandwidth::GBps(1).TransferTime(1'000'000'000), TimeNs::Seconds(1));
  // 200 Gbps moving 25000 bytes takes 1 microsecond.
  EXPECT_EQ(Bandwidth::Gbps(200).TransferTime(25'000), TimeNs::Micros(1));
}

TEST(BandwidthTest, ZeroRateTransferNeverCompletes) {
  EXPECT_EQ(Bandwidth::Zero().TransferTime(1), TimeNs::Max());
  EXPECT_TRUE(Bandwidth::Zero().IsZero());
  EXPECT_FALSE(Bandwidth::Gbps(1).IsZero());
}

TEST(BandwidthTest, Arithmetic) {
  const Bandwidth a = Bandwidth::GBps(10);
  const Bandwidth b = Bandwidth::GBps(4);
  EXPECT_DOUBLE_EQ((a + b).ToGBps(), 14.0);
  EXPECT_DOUBLE_EQ((a - b).ToGBps(), 6.0);
  EXPECT_DOUBLE_EQ((a * 2.0).ToGBps(), 20.0);
  EXPECT_DOUBLE_EQ((a / 2.0).ToGBps(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  Bandwidth c = a;
  c += b;
  EXPECT_DOUBLE_EQ(c.ToGBps(), 14.0);
  c -= b;
  EXPECT_DOUBLE_EQ(c.ToGBps(), 10.0);
}

TEST(BandwidthTest, Comparisons) {
  EXPECT_LT(Bandwidth::Gbps(100), Bandwidth::GBps(100));
  EXPECT_EQ(Bandwidth::Gbps(8), Bandwidth::GBps(1));
}

TEST(BandwidthTest, ToStringPicksUnit) {
  EXPECT_EQ(Bandwidth::GBps(25).ToString(), "25.0GB/s");
  EXPECT_EQ(Bandwidth::Mbps(80).ToString(), "10.0MB/s");
}

TEST(ByteUnitsTest, Helpers) {
  EXPECT_EQ(KiB(4), 4096);
  EXPECT_EQ(MiB(1), 1048576);
  EXPECT_EQ(GiB(2), 2147483648LL);
}

}  // namespace
}  // namespace mihn::sim
