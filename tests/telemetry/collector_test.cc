#include "src/telemetry/collector.h"

#include <gtest/gtest.h>

#include "src/host/host_network.h"
#include "src/workload/sources.h"

namespace mihn::telemetry {
namespace {

using sim::Bandwidth;
using sim::TimeNs;

HostNetwork::Options NoAutoStart() {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  return options;
}

TEST(CollectorTest, SamplesPeriodically) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  Collector::Config config;
  config.period = TimeNs::Millis(1);
  Collector collector(host.fabric(), config);
  collector.Start();
  host.RunFor(TimeNs::Millis(10));
  EXPECT_EQ(collector.samples_taken(), 10u);
  collector.Stop();
  host.RunFor(TimeNs::Millis(10));
  EXPECT_EQ(collector.samples_taken(), 10u);
}

TEST(CollectorTest, RecordsUtilizationOfActiveLink) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  const auto& server = host.server();
  Collector::Config config;
  config.period = TimeNs::Millis(1);
  Collector collector(host.fabric(), config);

  workload::StreamSource::Config bulk;
  bulk.src = server.ssds[0];
  bulk.dst = server.dimms[0];
  bulk.demand = Bandwidth::GBps(5);
  workload::StreamSource stream(host.fabric(), bulk);
  stream.Start();

  collector.Start();
  host.RunFor(TimeNs::Millis(5));

  const auto path = *host.fabric().Route(server.ssds[0], server.dimms[0]);
  const topology::DirectedLink hop = path.hops[0];
  const sim::TimeSeries* util = collector.Series(Collector::LinkUtilKey(hop.link, hop.forward));
  ASSERT_NE(util, nullptr);
  EXPECT_EQ(util->size(), 5u);
  EXPECT_GT(util->Latest().value, 0.1);
}

TEST(CollectorTest, ThroughputSeriesIncludesPacketTraffic) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  const auto& server = host.server();
  Collector::Config config;
  config.period = TimeNs::Millis(1);
  Collector collector(host.fabric(), config);
  collector.Start();

  // Only packet traffic: 1000 x 1 KiB packets per ms on nic0 -> s0. The
  // fluid rate_bps stays 0, but the byte-delta throughput sees it.
  const auto path = *host.fabric().Route(server.nics[0], server.sockets[0]);
  host.simulation().SchedulePeriodic(TimeNs::Micros(1), [&] {
    fabric::PacketSpec pkt;
    pkt.path = path;
    pkt.bytes = 1024;
    host.fabric().SendPacket(std::move(pkt));
  });
  host.RunFor(TimeNs::Millis(10));

  const topology::DirectedLink hop = path.hops[0];
  const sim::TimeSeries* rate = collector.Series(Collector::LinkRateKey(hop.link, hop.forward));
  const sim::TimeSeries* thpt =
      collector.Series(Collector::LinkThroughputKey(hop.link, hop.forward));
  ASSERT_NE(rate, nullptr);
  ASSERT_NE(thpt, nullptr);
  EXPECT_DOUBLE_EQ(rate->Latest().value, 0.0);
  // ~1 KiB/us = ~1.024 GB/s.
  EXPECT_NEAR(thpt->Latest().value, 1.024e9, 0.05e9);
}

TEST(CollectorTest, ThroughputMatchesFluidRateForFlows) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  const auto& server = host.server();
  Collector::Config config;
  config.period = TimeNs::Millis(1);
  Collector collector(host.fabric(), config);
  collector.Start();
  workload::StreamSource::Config bulk;
  bulk.src = server.ssds[0];
  bulk.dst = server.dimms[0];
  bulk.demand = Bandwidth::GBps(5);
  workload::StreamSource stream(host.fabric(), bulk);
  stream.Start();
  host.RunFor(TimeNs::Millis(5));
  const auto path = *host.fabric().Route(server.ssds[0], server.dimms[0]);
  const topology::DirectedLink hop = path.hops[0];
  const sim::TimeSeries* thpt =
      collector.Series(Collector::LinkThroughputKey(hop.link, hop.forward));
  ASSERT_NE(thpt, nullptr);
  EXPECT_NEAR(thpt->Latest().value, 5e9, 1e7);
}

TEST(CollectorTest, FineModeHasPerTenantSeries) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  const auto& server = host.server();
  Collector::Config config;
  config.granularity = Granularity::kFine;
  Collector collector(host.fabric(), config);

  workload::StreamSource::Config bulk;
  bulk.src = server.ssds[0];
  bulk.dst = server.dimms[0];
  bulk.tenant = 42;
  workload::StreamSource stream(host.fabric(), bulk);
  stream.Start();
  collector.SampleOnce();

  const auto path = *host.fabric().Route(server.ssds[0], server.dimms[0]);
  const topology::DirectedLink hop = path.hops[0];
  const sim::TimeSeries* tenant_rate =
      collector.Series(Collector::TenantRateKey(hop.link, hop.forward, 42));
  ASSERT_NE(tenant_rate, nullptr);
  EXPECT_GT(tenant_rate->Latest().value, 0.0);
  // Cache series exist in fine mode.
  EXPECT_NE(collector.Series(Collector::CacheHitKey(server.sockets[0])), nullptr);
}

TEST(CollectorTest, CoarseModeOmitsTenantsAndClampsPeriod) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  const auto& server = host.server();
  Collector::Config config;
  config.granularity = Granularity::kCoarse;
  config.period = TimeNs::Micros(10);  // Far below the hardware floor.
  Collector collector(host.fabric(), config);
  EXPECT_EQ(collector.config().period, kCoarseMinPeriod);

  workload::StreamSource::Config bulk;
  bulk.src = server.ssds[0];
  bulk.dst = server.dimms[0];
  bulk.tenant = 42;
  workload::StreamSource stream(host.fabric(), bulk);
  stream.Start();
  collector.SampleOnce();

  const auto path = *host.fabric().Route(server.ssds[0], server.dimms[0]);
  const topology::DirectedLink hop = path.hops[0];
  EXPECT_EQ(collector.Series(Collector::TenantRateKey(hop.link, hop.forward, 42)), nullptr);
  EXPECT_EQ(collector.Series(Collector::CacheHitKey(server.sockets[0])), nullptr);
  // Aggregate series still exist.
  EXPECT_NE(collector.Series(Collector::LinkUtilKey(hop.link, hop.forward)), nullptr);
}

TEST(CollectorTest, FineHasMoreSeriesThanCoarse) {
  auto series_count = [](Granularity g) {
    sim::Simulation sim;
    HostNetwork host(sim, NoAutoStart());
    workload::StreamSource::Config bulk;
    bulk.src = host.server().ssds[0];
    bulk.dst = host.server().dimms[0];
    bulk.tenant = 1;
    workload::StreamSource stream(host.fabric(), bulk);
    stream.Start();
    Collector::Config config;
    config.granularity = g;
    Collector collector(host.fabric(), config);
    collector.SampleOnce();
    return collector.series_count();
  };
  EXPECT_GT(series_count(Granularity::kFine), series_count(Granularity::kCoarse));
}

TEST(CollectorTest, ReportingInjectsMonitorTraffic) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  const auto& server = host.server();
  ASSERT_NE(server.monitor_store, topology::kInvalidComponent);
  Collector::Config config;
  config.period = TimeNs::Millis(1);
  config.report_to = server.monitor_store;
  Collector collector(host.fabric(), config);
  collector.Start();
  host.RunFor(TimeNs::Millis(10));
  EXPECT_GT(collector.bytes_reported(), 0);
  // The monitor-store link carries kMonitor-class bytes.
  const auto path = *host.fabric().Route(server.sockets[0], server.monitor_store);
  const auto snap = host.fabric().Snapshot(path.hops[0]);
  EXPECT_GT(snap.bytes_by_class[static_cast<size_t>(fabric::TrafficClass::kMonitor)], 0.0);
  EXPECT_DOUBLE_EQ(
      snap.bytes_by_class[static_cast<size_t>(fabric::TrafficClass::kMonitor)],
      static_cast<double>(collector.bytes_reported()));
}

TEST(CollectorTest, NoReportingWhenUnset) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  Collector::Config config;
  Collector collector(host.fabric(), config);
  collector.Start();
  host.RunFor(TimeNs::Millis(5));
  EXPECT_EQ(collector.bytes_reported(), 0);
}

TEST(CollectorTest, StoragePressureDropsOldPoints) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  Collector::Config config;
  config.period = TimeNs::Millis(1);
  config.series_capacity = 4;
  Collector collector(host.fabric(), config);
  collector.Start();
  host.RunFor(TimeNs::Millis(10));
  EXPECT_GT(collector.total_dropped_points(), 0u);
  for (const auto& key : collector.Keys()) {
    EXPECT_LE(collector.Series(key)->size(), 4u);
  }
}

TEST(CollectorTest, KeysAreStableSchema) {
  EXPECT_EQ(Collector::LinkUtilKey(3, true), "link/3/fwd/util");
  EXPECT_EQ(Collector::LinkRateKey(3, false), "link/3/rev/rate");
  EXPECT_EQ(Collector::TenantRateKey(0, true, 7), "link/0/fwd/tenant/7/rate");
  EXPECT_EQ(Collector::CacheHitKey(2), "socket/2/cache_hit");
  EXPECT_EQ(Collector::ClassRateKey(1, true, fabric::TrafficClass::kSpill),
            "link/1/fwd/class/spill/rate");
}

TEST(CollectorTest, SeriesLookupMissReturnsNull) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  Collector collector(host.fabric(), Collector::Config{});
  EXPECT_EQ(collector.Series("nope"), nullptr);
  EXPECT_TRUE(collector.Keys().empty());
}

}  // namespace
}  // namespace mihn::telemetry
