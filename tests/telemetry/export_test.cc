#include "src/telemetry/export.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/host/host_network.h"

namespace mihn::telemetry {
namespace {

HostNetwork::Options NoAutoStart() {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  return options;
}

TEST(ExportTest, WritesHeaderAndRows) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  Collector::Config config;
  config.period = sim::TimeNs::Millis(1);
  Collector collector(host.fabric(), config);
  collector.Start();
  host.RunFor(sim::TimeNs::Millis(3));

  std::ostringstream out;
  const size_t rows = WriteCsv(collector, out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("time_ns,metric,value\n"), std::string::npos);
  EXPECT_GT(rows, 0u);
  // Row count == total retained points.
  size_t expected = 0;
  for (const auto& key : collector.Keys()) {
    expected += collector.Series(key)->size();
  }
  EXPECT_EQ(rows, expected);
  // Line count = rows + header.
  size_t lines = 0;
  for (const char c : csv) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, rows + 1);
}

TEST(ExportTest, KeyFilterRestrictsOutput) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  Collector collector(host.fabric(), Collector::Config{});
  collector.SampleOnce();
  const std::string key = Collector::LinkUtilKey(0, true);
  std::ostringstream out;
  const size_t rows = WriteCsv(collector, out, {key});
  EXPECT_EQ(rows, 1u);
  EXPECT_NE(out.str().find(key), std::string::npos);
  EXPECT_EQ(out.str().find("link/1/"), std::string::npos);
}

TEST(ExportTest, UnknownKeysSkipped) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  Collector collector(host.fabric(), Collector::Config{});
  collector.SampleOnce();
  std::ostringstream out;
  EXPECT_EQ(WriteCsv(collector, out, {"no/such/key"}), 0u);
}

TEST(ExportTest, EmptyCollectorWritesHeaderOnly) {
  sim::Simulation sim;
  HostNetwork host(sim, NoAutoStart());
  Collector collector(host.fabric(), Collector::Config{});
  std::ostringstream out;
  EXPECT_EQ(WriteCsv(collector, out), 0u);
  EXPECT_EQ(out.str(), "time_ns,metric,value\n");
}

}  // namespace
}  // namespace mihn::telemetry
