#include "src/topology/presets.h"

#include <gtest/gtest.h>

#include "src/topology/routing.h"

namespace mihn::topology {
namespace {

TEST(PresetsTest, CommodityTwoSocketValidates) {
  const Server s = CommodityTwoSocket();
  EXPECT_EQ(s.topo.Validate(), "") << s.topo.Describe();
}

TEST(PresetsTest, CommodityTwoSocketInventory) {
  const Server s = CommodityTwoSocket();
  EXPECT_EQ(s.sockets.size(), 2u);
  // 2 sockets x 2 root ports x 1 switch x (1 nic + 1 gpu + 1 ssd).
  EXPECT_EQ(s.nics.size(), 4u);
  EXPECT_EQ(s.gpus.size(), 4u);
  EXPECT_EQ(s.ssds.size(), 4u);
  EXPECT_EQ(s.external_hosts.size(), 4u);
  EXPECT_EQ(s.dimms.size(), 8u);
  EXPECT_NE(s.monitor_store, kInvalidComponent);
}

TEST(PresetsTest, CommodityHasAllFigure1LinkClasses) {
  const Server s = CommodityTwoSocket();
  for (const LinkKind k :
       {LinkKind::kInterSocket, LinkKind::kIntraSocket, LinkKind::kPcieSwitchUp,
        LinkKind::kPcieSwitchDown, LinkKind::kInterHost}) {
    EXPECT_FALSE(s.topo.LinksOfKind(k).empty()) << LinkKindName(k);
  }
}

TEST(PresetsTest, ComponentKindsMatchHandles) {
  const Server s = CommodityTwoSocket();
  for (const ComponentId nic : s.nics) {
    EXPECT_EQ(s.topo.component(nic).kind, ComponentKind::kNic);
  }
  for (const ComponentId gpu : s.gpus) {
    EXPECT_EQ(s.topo.component(gpu).kind, ComponentKind::kGpu);
  }
  for (const ComponentId dimm : s.dimms) {
    EXPECT_EQ(s.topo.component(dimm).kind, ComponentKind::kDimm);
  }
}

TEST(PresetsTest, RemoteToDimmPathCrossesExpectedClasses) {
  // The paper's end-to-end example: a remote RDMA access traverses classes
  // (5) inter-host, (3)/(4) PCIe, (2) intra-socket fabrics.
  const Server s = CommodityTwoSocket();
  Router router(s.topo);
  const auto path = router.ShortestPath(s.external_hosts[0], s.dimms[0]);
  ASSERT_TRUE(path.has_value());
  std::set<LinkKind> kinds;
  for (const DirectedLink& hop : path->hops) {
    kinds.insert(s.topo.link(hop.link).spec.kind);
  }
  EXPECT_TRUE(kinds.contains(LinkKind::kInterHost));
  EXPECT_TRUE(kinds.contains(LinkKind::kPcieSwitchDown));
  EXPECT_TRUE(kinds.contains(LinkKind::kPcieSwitchUp));
  EXPECT_TRUE(kinds.contains(LinkKind::kIntraSocket));
}

TEST(PresetsTest, DgxClassValidatesAndHasEightGpus) {
  const Server s = DgxClass();
  EXPECT_EQ(s.topo.Validate(), "");
  EXPECT_EQ(s.gpus.size(), 8u);
  EXPECT_EQ(s.nics.size(), 4u);
}

TEST(PresetsTest, DgxGpusSpreadAcrossSockets) {
  const Server s = DgxClass();
  const ComponentId sock0 = s.topo.component(s.gpus.front()).socket;
  const ComponentId sockN = s.topo.component(s.gpus.back()).socket;
  EXPECT_NE(sock0, sockN);
}

TEST(PresetsTest, EdgeNodeValidatesAndIsDirectAttached) {
  const Server s = EdgeNode();
  EXPECT_EQ(s.topo.Validate(), "");
  EXPECT_EQ(s.gpus.size(), 0u);
  EXPECT_EQ(s.nics.size(), 1u);
  EXPECT_EQ(s.ssds.size(), 1u);
  EXPECT_TRUE(s.topo.LinksOfKind(LinkKind::kPcieSwitchUp).empty());
  EXPECT_FALSE(s.topo.LinksOfKind(LinkKind::kPcieRootLink).empty());
}

TEST(PresetsTest, MonitorStoreCanBeDisabled) {
  ServerSpec spec;
  spec.monitor_store = false;
  const Server s = BuildServer(spec);
  EXPECT_EQ(s.monitor_store, kInvalidComponent);
  EXPECT_EQ(s.topo.Validate(), "");
}

TEST(PresetsTest, ExternalHostsCanBeDisabled) {
  ServerSpec spec;
  spec.external_host_per_nic = false;
  const Server s = BuildServer(spec);
  EXPECT_TRUE(s.external_hosts.empty());
  EXPECT_TRUE(s.topo.LinksOfKind(LinkKind::kInterHost).empty());
  EXPECT_EQ(s.topo.Validate(), "");
}

TEST(PresetsTest, FourSocketRingConnects) {
  ServerSpec spec;
  spec.sockets = 4;
  const Server s = BuildServer(spec);
  EXPECT_EQ(s.topo.Validate(), "");
  // (Chain of 3 pairs + closing ring pair) x 2 parallel links = 8.
  EXPECT_EQ(s.topo.LinksOfKind(LinkKind::kInterSocket).size(), 8u);
}

TEST(PresetsTest, AlternateGpuSsdPathwaysExistOnDgx) {
  // §3.2: "there can be several GPU-SSD pathways within an intra-host
  // network" — the scheduler preset must actually provide them.
  const Server s = DgxClass();
  Router router(s.topo);
  // Cross-socket GPU -> SSD: the parallel inter-socket links provide
  // genuinely distinct pathways.
  const auto paths = router.KShortestPaths(s.gpus[0], s.ssds.back(), 3);
  EXPECT_GE(paths.size(), 2u);
}

TEST(PresetsTest, CxlPooledServerValidates) {
  const Server s = CxlPooledServer();
  EXPECT_EQ(s.topo.Validate(), "");
  EXPECT_EQ(s.cxl_memories.size(), 2u);
  for (const ComponentId cxl : s.cxl_memories) {
    EXPECT_EQ(s.topo.component(cxl).kind, ComponentKind::kCxlMemory);
  }
  // CXL memory hangs directly off its socket via a kCxl link.
  const auto cxl_links = s.topo.LinksOfKind(LinkKind::kCxl);
  ASSERT_EQ(cxl_links.size(), 2u);
  const LinkSpec spec = s.topo.link(cxl_links[0]).spec;
  // The paper's cited numbers: ~150ns, and CXL 2.0 x16-class bandwidth.
  EXPECT_EQ(spec.base_latency, sim::TimeNs::Nanos(150));
  EXPECT_DOUBLE_EQ(spec.capacity.ToGBps(), 64.0);
}

TEST(PresetsTest, CxlMemoryReachableFromDevices) {
  const Server s = CxlPooledServer();
  Router router(s.topo);
  const auto path = router.ShortestPath(s.gpus[0], s.cxl_memories[0]);
  ASSERT_TRUE(path.has_value());
  // PCIe up to the socket, then one CXL hop.
  EXPECT_EQ(s.topo.link(path->hops.back().link).spec.kind, LinkKind::kCxl);
}

TEST(PresetsTest, DefaultPresetHasNoCxl) {
  const Server s = CommodityTwoSocket();
  EXPECT_TRUE(s.cxl_memories.empty());
  EXPECT_TRUE(s.topo.LinksOfKind(LinkKind::kCxl).empty());
}

TEST(PresetsTest, CustomLinkSpecsArePropagated) {
  ServerSpec spec;
  spec.inter_socket.capacity = sim::Bandwidth::GBps(64);
  const Server s = BuildServer(spec);
  for (const LinkId lid : s.topo.LinksOfKind(LinkKind::kInterSocket)) {
    EXPECT_DOUBLE_EQ(s.topo.link(lid).spec.capacity.ToGBps(), 64.0);
  }
}

}  // namespace
}  // namespace mihn::topology
