#include "src/topology/routing.h"

#include <gtest/gtest.h>

#include <set>

#include "src/topology/presets.h"

namespace mihn::topology {
namespace {

using sim::Bandwidth;
using sim::TimeNs;

// A diamond with asymmetric latencies: s -> {a fast, b slow} -> t.
struct Diamond {
  Topology topo;
  ComponentId s, a, b, t;
  LinkId sa, sb, at, bt;
};

Diamond MakeDiamond() {
  Diamond d;
  d.s = d.topo.AddComponent(ComponentKind::kCpuSocket, "s");
  d.a = d.topo.AddComponent(ComponentKind::kPcieSwitch, "a");
  d.b = d.topo.AddComponent(ComponentKind::kPcieSwitch, "b");
  d.t = d.topo.AddComponent(ComponentKind::kGpu, "t");
  const auto spec = [](int64_t ns, double gbps) {
    return LinkSpec{LinkKind::kPcieSwitchDown, Bandwidth::Gbps(gbps), TimeNs::Nanos(ns)};
  };
  d.sa = d.topo.AddLink(d.s, d.a, spec(10, 100));
  d.sb = d.topo.AddLink(d.s, d.b, spec(50, 400));
  d.at = d.topo.AddLink(d.a, d.t, spec(10, 100));
  d.bt = d.topo.AddLink(d.b, d.t, spec(50, 400));
  return d;
}

TEST(RoutingTest, ShortestPathPicksLowestLatency) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  const auto path = router.ShortestPath(d.s, d.t);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes, (std::vector<ComponentId>{d.s, d.a, d.t}));
  EXPECT_EQ(path->BaseLatency(d.topo), TimeNs::Nanos(20));
}

TEST(RoutingTest, PathEndpoints) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  const auto path = router.ShortestPath(d.s, d.t);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->source(), d.s);
  EXPECT_EQ(path->destination(), d.t);
  EXPECT_EQ(path->hops.size(), 2u);
}

TEST(RoutingTest, SameSourceAndDestinationIsNull) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  EXPECT_FALSE(router.ShortestPath(d.s, d.s).has_value());
}

TEST(RoutingTest, UnreachableReturnsNull) {
  Topology topo;
  const ComponentId a = topo.AddComponent(ComponentKind::kCpuSocket, "a");
  const ComponentId b = topo.AddComponent(ComponentKind::kGpu, "b");
  Router router(topo);
  EXPECT_FALSE(router.ShortestPath(a, b).has_value());
}

TEST(RoutingTest, ExcludedLinksForceAlternatePath) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  const auto path = router.ShortestPath(d.s, d.t, {d.sa});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes, (std::vector<ComponentId>{d.s, d.b, d.t}));
  EXPECT_EQ(path->BaseLatency(d.topo), TimeNs::Nanos(100));
}

TEST(RoutingTest, ExcludingAllPathsReturnsNull) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  EXPECT_FALSE(router.ShortestPath(d.s, d.t, {d.sa, d.sb}).has_value());
}

TEST(RoutingTest, DirectionsAreCorrect) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  const auto path = router.ShortestPath(d.t, d.s);
  ASSERT_TRUE(path.has_value());
  // Traversing a->t's link in reverse must be marked !forward (link stored
  // as (a=the switch a, b=t) or per insertion).
  for (const DirectedLink& hop : path->hops) {
    const Link& l = d.topo.link(hop.link);
    // Walk consistency: hop i goes nodes[i] -> nodes[i+1].
    const size_t i = static_cast<size_t>(&hop - path->hops.data());
    const ComponentId from = path->nodes[i];
    const ComponentId to = path->nodes[i + 1];
    if (hop.forward) {
      EXPECT_EQ(l.a, from);
      EXPECT_EQ(l.b, to);
    } else {
      EXPECT_EQ(l.b, from);
      EXPECT_EQ(l.a, to);
    }
  }
}

TEST(RoutingTest, BottleneckCapacity) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  const auto path = router.ShortestPath(d.s, d.t, {d.sa});
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->BottleneckCapacity(d.topo).ToGbps(), 400.0);
}

TEST(RoutingTest, PathUses) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  const auto path = router.ShortestPath(d.s, d.t);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->Uses(d.sa));
  EXPECT_FALSE(path->Uses(d.sb));
}

TEST(RoutingTest, KShortestFindsBothDiamondPaths) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  const auto paths = router.KShortestPaths(d.s, d.t, 4);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].nodes, (std::vector<ComponentId>{d.s, d.a, d.t}));
  EXPECT_EQ(paths[1].nodes, (std::vector<ComponentId>{d.s, d.b, d.t}));
  EXPECT_LE(paths[0].BaseLatency(d.topo), paths[1].BaseLatency(d.topo));
}

TEST(RoutingTest, KShortestRespectsK) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  EXPECT_EQ(router.KShortestPaths(d.s, d.t, 1).size(), 1u);
}

TEST(RoutingTest, KShortestPathsAreUniqueAndSorted) {
  // Grid-ish topology with many alternate routes: two sockets, cross links.
  Server server = DgxClass();
  Router router(server.topo);
  const auto paths = router.KShortestPaths(server.gpus[0], server.ssds.back(), 6);
  ASSERT_GE(paths.size(), 2u);
  std::set<std::vector<std::pair<LinkId, bool>>> unique;
  TimeNs prev = TimeNs::Zero();
  for (const Path& p : paths) {
    EXPECT_EQ(p.source(), server.gpus[0]);
    EXPECT_EQ(p.destination(), server.ssds.back());
    std::vector<std::pair<LinkId, bool>> key;
    for (const DirectedLink& h : p.hops) {
      key.emplace_back(h.link, h.forward);
    }
    EXPECT_TRUE(unique.insert(key).second) << "duplicate path";
    EXPECT_GE(p.BaseLatency(server.topo), prev);
    prev = p.BaseLatency(server.topo);
    // Loop-free.
    std::set<ComponentId> nodes(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(nodes.size(), p.nodes.size());
  }
}

TEST(RoutingTest, PathToStringReadable) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  const auto path = router.ShortestPath(d.s, d.t);
  EXPECT_EQ(path->ToString(d.topo), "s -> a -> t");
}

TEST(RoutingCacheTest, RepeatQueriesHitCache) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  EXPECT_EQ(router.cache_stats().hits, 0u);
  EXPECT_EQ(router.cache_stats().misses, 0u);

  const auto first = router.ShortestPath(d.s, d.t);
  EXPECT_EQ(router.cache_stats().misses, 1u);
  EXPECT_EQ(router.cache_stats().hits, 0u);

  const auto second = router.ShortestPath(d.s, d.t);
  EXPECT_EQ(router.cache_stats().misses, 1u);
  EXPECT_EQ(router.cache_stats().hits, 1u);
  EXPECT_EQ(*first, *second);

  // A different k is a different key.
  const auto kpaths = router.KShortestPaths(d.s, d.t, 2);
  EXPECT_EQ(router.cache_stats().misses, 2u);
  const auto kpaths_again = router.KShortestPaths(d.s, d.t, 2);
  EXPECT_EQ(router.cache_stats().hits, 2u);
  EXPECT_EQ(kpaths, kpaths_again);
}

TEST(RoutingCacheTest, ShortestPathAndK1ShareAnEntry) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  const auto direct = router.ShortestPath(d.s, d.t);
  const auto via_k = router.KShortestPaths(d.s, d.t, 1);
  EXPECT_EQ(router.cache_stats().misses, 1u);
  EXPECT_EQ(router.cache_stats().hits, 1u);
  ASSERT_EQ(via_k.size(), 1u);
  EXPECT_EQ(*direct, via_k.front());
}

TEST(RoutingCacheTest, ExcludedLinkQueriesBypassCache) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  const auto detour = router.ShortestPath(d.s, d.t, {d.sa});
  ASSERT_TRUE(detour.has_value());
  EXPECT_EQ(detour->ToString(d.topo), "s -> b -> t");
  EXPECT_EQ(router.cache_stats().hits, 0u);
  EXPECT_EQ(router.cache_stats().misses, 0u);
}

TEST(RoutingCacheTest, TopologyMutationInvalidates) {
  Diamond d = MakeDiamond();
  Router router(d.topo);
  const auto before = router.ShortestPath(d.s, d.t);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->ToString(d.topo), "s -> a -> t");
  EXPECT_EQ(router.ShortestPath(d.s, d.t)->ToString(d.topo), "s -> a -> t");
  EXPECT_EQ(router.cache_stats().hits, 1u);

  // Add a direct s -> t shortcut; the memoized answer is now wrong and the
  // version bump must flush it.
  d.topo.AddLink(d.s, d.t,
                 LinkSpec{LinkKind::kPcieSwitchDown, Bandwidth::Gbps(100), TimeNs::Nanos(1)});
  const auto after = router.ShortestPath(d.s, d.t);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->ToString(d.topo), "s -> t");
  EXPECT_EQ(router.cache_stats().invalidations, 1u);
  EXPECT_EQ(router.cache_stats().misses, 2u);
}

TEST(RoutingCacheTest, CachedResultsMatchUncached) {
  Server server = DgxClass();
  Router cold(server.topo);
  Router warm(server.topo);
  // Warm one router, then compare every repeated query against a fresh
  // router answering the same question for the first time.
  for (int k : {1, 2, 4, 6}) {
    const auto warm_first = warm.KShortestPaths(server.gpus[0], server.ssds.back(), k);
    const auto warm_second = warm.KShortestPaths(server.gpus[0], server.ssds.back(), k);
    const auto cold_answer = cold.KShortestPaths(server.gpus[0], server.ssds.back(), k);
    EXPECT_EQ(warm_first, warm_second) << "k=" << k;
    EXPECT_EQ(warm_second, cold_answer) << "k=" << k;
  }
  EXPECT_GT(warm.cache_stats().hits, 0u);
}

TEST(RoutingHealthTest, SetLinkHealthOnlyBumpsEpochOnEffectiveChange) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  EXPECT_EQ(router.fault_epoch(), 0u);

  EXPECT_TRUE(router.SetLinkHealth({d.sa}, {}));
  EXPECT_EQ(router.fault_epoch(), 1u);

  // Same sets (order and duplicates ignored): no epoch movement.
  EXPECT_FALSE(router.SetLinkHealth({d.sa, d.sa}, {}));
  EXPECT_EQ(router.fault_epoch(), 1u);

  EXPECT_TRUE(router.SetLinkHealth({d.sa}, {d.bt}));
  EXPECT_EQ(router.fault_epoch(), 2u);

  EXPECT_TRUE(router.SetLinkHealth({}, {}));
  EXPECT_EQ(router.fault_epoch(), 3u);
}

TEST(RoutingHealthTest, DeadLinkExcludedFromShortestAndKShortest) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);
  router.SetLinkHealth({d.sa}, {});

  const auto path = router.ShortestPath(d.s, d.t);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->ToString(d.topo), "s -> b -> t");

  for (const Path& p : router.KShortestPaths(d.s, d.t, 4)) {
    EXPECT_FALSE(p.Uses(d.sa));
  }
}

TEST(RoutingHealthTest, DegradedLinkAvoidedOnlyWhenAlternativeExists) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);

  // Degrading the fast path diverts the shortest path to the slow one.
  router.SetLinkHealth({}, {d.sa});
  auto path = router.ShortestPath(d.s, d.t);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->ToString(d.topo), "s -> b -> t");

  // Degrading both legs leaves no healthy alternative: the router falls
  // back to routing over degraded links rather than failing.
  router.SetLinkHealth({}, {d.sa, d.sb});
  path = router.ShortestPath(d.s, d.t);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->ToString(d.topo), "s -> a -> t");
}

TEST(RoutingHealthTest, FaultEpochInvalidatesMemoizedRoutes) {
  const Diamond d = MakeDiamond();
  Router router(d.topo);

  const auto original = router.ShortestPath(d.s, d.t);
  ASSERT_TRUE(original.has_value());
  EXPECT_EQ(original->ToString(d.topo), "s -> a -> t");
  EXPECT_EQ(*router.ShortestPath(d.s, d.t), *original);
  EXPECT_EQ(router.cache_stats().hits, 1u);

  // PR-4 regression: inject -> the cached s->a->t answer must die.
  router.SetLinkHealth({d.sa}, {});
  const auto detour = router.ShortestPath(d.s, d.t);
  ASSERT_TRUE(detour.has_value());
  EXPECT_EQ(detour->ToString(d.topo), "s -> b -> t");

  // ... and clear -> the cached detour must die too.
  router.SetLinkHealth({}, {});
  const auto restored = router.ShortestPath(d.s, d.t);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, *original);
  EXPECT_GE(router.cache_stats().invalidations, 2u);
}

}  // namespace
}  // namespace mihn::topology
