#include "src/topology/serialize.h"

#include <gtest/gtest.h>

#include "src/topology/presets.h"

namespace mihn::topology {
namespace {

TEST(SerializeTest, RoundTripPreset) {
  const Server server = CommodityTwoSocket();
  const std::string text = ToText(server.topo);
  const ParseResult parsed = FromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const Topology& re = *parsed.topology;
  ASSERT_EQ(re.component_count(), server.topo.component_count());
  ASSERT_EQ(re.link_count(), server.topo.link_count());
  for (const Component& c : server.topo.components()) {
    const auto id = re.FindComponent(c.name);
    ASSERT_TRUE(id.has_value()) << c.name;
    EXPECT_EQ(re.component(*id).kind, c.kind);
    // Socket attribution survives.
    if (c.socket != kInvalidComponent) {
      EXPECT_EQ(re.component(*id).socket,
                *re.FindComponent(server.topo.component(c.socket).name));
    }
  }
  for (size_t i = 0; i < server.topo.link_count(); ++i) {
    const Link& a = server.topo.link(static_cast<LinkId>(i));
    const Link& b = re.link(static_cast<LinkId>(i));
    EXPECT_EQ(a.spec.kind, b.spec.kind);
    EXPECT_NEAR(a.spec.capacity.ToGbps(), b.spec.capacity.ToGbps(), 1e-6);
    EXPECT_EQ(a.spec.base_latency, b.spec.base_latency);
  }
  EXPECT_EQ(re.Validate(), "");
}

TEST(SerializeTest, ParsesMinimalHost) {
  const char* text = R"(
# tiny host
component s0 cpu_socket
component nic0 nic socket=s0
link s0 nic0 pcie_root_link gbps=128 ns=90
)";
  const ParseResult parsed = FromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const Topology& topo = *parsed.topology;
  EXPECT_EQ(topo.component_count(), 2u);
  EXPECT_EQ(topo.link_count(), 1u);
  EXPECT_DOUBLE_EQ(topo.link(0).spec.capacity.ToGbps(), 128.0);
  EXPECT_EQ(topo.link(0).spec.base_latency, sim::TimeNs::Nanos(90));
  EXPECT_EQ(topo.component(1).socket, 0);
}

TEST(SerializeTest, DefaultsWhenAttributesOmitted) {
  const ParseResult parsed = FromText(
      "component a cpu_socket\ncomponent b cpu_socket\nlink a b inter_socket\n");
  ASSERT_TRUE(parsed.ok());
  const LinkSpec expected = DefaultLinkSpec(LinkKind::kInterSocket);
  EXPECT_DOUBLE_EQ(parsed.topology->link(0).spec.capacity.ToGbps(), expected.capacity.ToGbps());
  EXPECT_EQ(parsed.topology->link(0).spec.base_latency, expected.base_latency);
}

TEST(SerializeTest, ErrorsCiteLineNumbers) {
  struct Case {
    const char* text;
    const char* expect;
  };
  const Case cases[] = {
      {"component s0\n", "line 1"},
      {"component s0 flux_capacitor\n", "unknown component kind"},
      {"component s0 cpu_socket\ncomponent s0 nic\n", "duplicate"},
      {"component s0 cpu_socket\nlink s0 nic0 pcie_root_link\n", "not declared"},
      {"component s0 cpu_socket\ncomponent n nic\nlink s0 n warp_link\n", "unknown link kind"},
      {"component s0 cpu_socket\ncomponent n nic\nlink s0 n nic gbps=abc\n", "unknown link"},
      {"component n nic socket=ghost\n", "not declared before use"},
      {"teleport s0 s1\n", "unknown directive"},
      {"component s0 cpu_socket\nlink s0 s0 intra_socket\n", "self-loop"},
      {"component s0 cpu_socket\ncomponent n nic\nlink s0 n inter_host gbps=xyz\n",
       "bad gbps"},
  };
  for (const Case& c : cases) {
    const ParseResult parsed = FromText(c.text);
    EXPECT_FALSE(parsed.ok()) << c.text;
    EXPECT_NE(parsed.error.find(c.expect), std::string::npos)
        << "for input: " << c.text << " got error: " << parsed.error;
  }
}

TEST(SerializeTest, CommentsAndBlankLinesIgnored) {
  const ParseResult parsed = FromText("\n\n# hello\ncomponent s0 cpu_socket # trailing\n\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.topology->component_count(), 1u);
}

TEST(SerializeTest, EmptyInputIsEmptyTopology) {
  const ParseResult parsed = FromText("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.topology->component_count(), 0u);
}

TEST(SerializeTest, DotOutputContainsNodesAndEdges) {
  const Server server = EdgeNode();
  const std::string dot = ToDot(server.topo);
  EXPECT_NE(dot.find("graph intra_host"), std::string::npos);
  EXPECT_NE(dot.find("\"nic0\""), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

}  // namespace
}  // namespace mihn::topology
