#include "src/topology/topology.h"

#include <gtest/gtest.h>

namespace mihn::topology {
namespace {

using sim::Bandwidth;
using sim::TimeNs;

Topology MakeTriangle() {
  Topology topo;
  const ComponentId s0 = topo.AddComponent(ComponentKind::kCpuSocket, "s0");
  const ComponentId nic = topo.AddComponent(ComponentKind::kNic, "nic0", s0);
  const ComponentId gpu = topo.AddComponent(ComponentKind::kGpu, "gpu0", s0);
  topo.AddLink(s0, nic, LinkKind::kPcieRootLink);
  topo.AddLink(s0, gpu, LinkKind::kPcieRootLink);
  topo.AddLink(nic, gpu, LinkKind::kPcieRootLink);
  return topo;
}

TEST(TopologyTest, AddComponentAssignsSequentialIds) {
  Topology topo;
  EXPECT_EQ(topo.AddComponent(ComponentKind::kCpuSocket, "s0"), 0);
  EXPECT_EQ(topo.AddComponent(ComponentKind::kNic, "nic0"), 1);
  EXPECT_EQ(topo.component_count(), 2u);
  EXPECT_EQ(topo.component(0).name, "s0");
  EXPECT_EQ(topo.component(1).kind, ComponentKind::kNic);
}

TEST(TopologyTest, DuplicateNameRejected) {
  Topology topo;
  topo.AddComponent(ComponentKind::kCpuSocket, "s0");
  EXPECT_EQ(topo.AddComponent(ComponentKind::kNic, "s0"), kInvalidComponent);
  EXPECT_EQ(topo.component_count(), 1u);
}

TEST(TopologyTest, SocketSelfReference) {
  Topology topo;
  const ComponentId s0 = topo.AddComponent(ComponentKind::kCpuSocket, "s0");
  EXPECT_EQ(topo.component(s0).socket, s0);
  const ComponentId nic = topo.AddComponent(ComponentKind::kNic, "nic0", s0);
  EXPECT_EQ(topo.component(nic).socket, s0);
}

TEST(TopologyTest, SelfLoopRejected) {
  Topology topo;
  const ComponentId s0 = topo.AddComponent(ComponentKind::kCpuSocket, "s0");
  EXPECT_EQ(topo.AddLink(s0, s0, LinkKind::kIntraSocket), kInvalidLink);
}

TEST(TopologyTest, OutOfRangeLinkRejected) {
  Topology topo;
  const ComponentId s0 = topo.AddComponent(ComponentKind::kCpuSocket, "s0");
  EXPECT_EQ(topo.AddLink(s0, 42, LinkKind::kIntraSocket), kInvalidLink);
  EXPECT_EQ(topo.AddLink(kInvalidComponent, s0, LinkKind::kIntraSocket), kInvalidLink);
}

TEST(TopologyTest, IncidentLinksTrackBothEndpoints) {
  const Topology topo = MakeTriangle();
  EXPECT_EQ(topo.IncidentLinks(0).size(), 2u);
  EXPECT_EQ(topo.IncidentLinks(1).size(), 2u);
  EXPECT_EQ(topo.IncidentLinks(2).size(), 2u);
  EXPECT_EQ(topo.link_count(), 3u);
}

TEST(TopologyTest, LinkOther) {
  const Topology topo = MakeTriangle();
  const Link& l = topo.link(0);
  EXPECT_EQ(l.Other(l.a), l.b);
  EXPECT_EQ(l.Other(l.b), l.a);
}

TEST(TopologyTest, FindComponentByName) {
  const Topology topo = MakeTriangle();
  ASSERT_TRUE(topo.FindComponent("gpu0").has_value());
  EXPECT_EQ(*topo.FindComponent("gpu0"), 2);
  EXPECT_FALSE(topo.FindComponent("nope").has_value());
}

TEST(TopologyTest, ComponentsOfKind) {
  const Topology topo = MakeTriangle();
  EXPECT_EQ(topo.ComponentsOfKind(ComponentKind::kNic).size(), 1u);
  EXPECT_EQ(topo.ComponentsOfKind(ComponentKind::kNvmeSsd).size(), 0u);
}

TEST(TopologyTest, LinksOfKind) {
  const Topology topo = MakeTriangle();
  EXPECT_EQ(topo.LinksOfKind(LinkKind::kPcieRootLink).size(), 3u);
  EXPECT_EQ(topo.LinksOfKind(LinkKind::kInterSocket).size(), 0u);
}

TEST(TopologyTest, SameSocket) {
  Topology topo;
  const ComponentId s0 = topo.AddComponent(ComponentKind::kCpuSocket, "s0");
  const ComponentId s1 = topo.AddComponent(ComponentKind::kCpuSocket, "s1");
  const ComponentId nic = topo.AddComponent(ComponentKind::kNic, "nic0", s0);
  const ComponentId gpu = topo.AddComponent(ComponentKind::kGpu, "gpu0", s1);
  const ComponentId ext = topo.AddComponent(ComponentKind::kExternalHost, "remote0");
  EXPECT_TRUE(topo.SameSocket(nic, s0));
  EXPECT_FALSE(topo.SameSocket(nic, gpu));
  EXPECT_FALSE(topo.SameSocket(nic, ext));
  EXPECT_FALSE(topo.SameSocket(ext, ext));  // No socket at all.
}

TEST(TopologyTest, ValidateAcceptsWellFormed) {
  EXPECT_EQ(MakeTriangle().Validate(), "");
}

TEST(TopologyTest, ValidateRejectsEmpty) {
  Topology topo;
  EXPECT_NE(topo.Validate(), "");
}

TEST(TopologyTest, ValidateRejectsDisconnected) {
  Topology topo = MakeTriangle();
  topo.AddComponent(ComponentKind::kGpu, "lonely_gpu");
  const std::string err = topo.Validate();
  EXPECT_NE(err.find("lonely_gpu"), std::string::npos) << err;
}

TEST(TopologyTest, ValidateRejectsZeroCapacityLink) {
  Topology topo;
  const ComponentId a = topo.AddComponent(ComponentKind::kCpuSocket, "s0");
  const ComponentId b = topo.AddComponent(ComponentKind::kNic, "nic0", a);
  topo.AddLink(a, b, LinkSpec{LinkKind::kPcieRootLink, Bandwidth::Zero(), TimeNs::Nanos(10)});
  EXPECT_NE(topo.Validate().find("zero capacity"), std::string::npos);
}

TEST(TopologyTest, DescribeMentionsAllComponents) {
  const Topology topo = MakeTriangle();
  const std::string desc = topo.Describe();
  EXPECT_NE(desc.find("s0"), std::string::npos);
  EXPECT_NE(desc.find("nic0"), std::string::npos);
  EXPECT_NE(desc.find("gpu0"), std::string::npos);
}

TEST(LinkKindTest, Figure1Classes) {
  EXPECT_EQ(Figure1Class(LinkKind::kInterSocket), 1);
  EXPECT_EQ(Figure1Class(LinkKind::kIntraSocket), 2);
  EXPECT_EQ(Figure1Class(LinkKind::kPcieSwitchUp), 3);
  EXPECT_EQ(Figure1Class(LinkKind::kPcieSwitchDown), 4);
  EXPECT_EQ(Figure1Class(LinkKind::kInterHost), 5);
  EXPECT_EQ(Figure1Class(LinkKind::kPcieRootLink), 0);
}

TEST(LinkKindTest, DefaultSpecsInsideFigure1Ranges) {
  // (1) 20-72 GB/s, 130-220ns.
  const LinkSpec s1 = DefaultLinkSpec(LinkKind::kInterSocket);
  EXPECT_GE(s1.capacity.ToGBps(), 20.0);
  EXPECT_LE(s1.capacity.ToGBps(), 72.0);
  EXPECT_GE(s1.base_latency.nanos(), 130);
  EXPECT_LE(s1.base_latency.nanos(), 220);
  // (2) 100-200 GB/s, 2-110ns.
  const LinkSpec s2 = DefaultLinkSpec(LinkKind::kIntraSocket);
  EXPECT_GE(s2.capacity.ToGBps(), 100.0);
  EXPECT_LE(s2.capacity.ToGBps(), 200.0);
  EXPECT_GE(s2.base_latency.nanos(), 2);
  EXPECT_LE(s2.base_latency.nanos(), 110);
  // (3)/(4) ~256 Gbps, 30-120ns.
  for (const LinkKind k : {LinkKind::kPcieSwitchUp, LinkKind::kPcieSwitchDown}) {
    const LinkSpec s = DefaultLinkSpec(k);
    EXPECT_NEAR(s.capacity.ToGbps(), 256.0, 1.0);
    EXPECT_GE(s.base_latency.nanos(), 30);
    EXPECT_LE(s.base_latency.nanos(), 120);
  }
  // (5) ~200 Gbps, < 2us.
  const LinkSpec s5 = DefaultLinkSpec(LinkKind::kInterHost);
  EXPECT_NEAR(s5.capacity.ToGbps(), 200.0, 1.0);
  EXPECT_LT(s5.base_latency, TimeNs::Micros(2));
}

TEST(ComponentKindTest, EndpointClassification) {
  EXPECT_TRUE(IsEndpointKind(ComponentKind::kNic));
  EXPECT_TRUE(IsEndpointKind(ComponentKind::kGpu));
  EXPECT_TRUE(IsEndpointKind(ComponentKind::kDimm));
  EXPECT_TRUE(IsEndpointKind(ComponentKind::kExternalHost));
  EXPECT_FALSE(IsEndpointKind(ComponentKind::kPcieSwitch));
  EXPECT_FALSE(IsEndpointKind(ComponentKind::kPcieRootPort));
  EXPECT_FALSE(IsEndpointKind(ComponentKind::kMemoryController));
}

TEST(ComponentKindTest, NamesAreNonEmptyAndDistinctish) {
  EXPECT_EQ(ComponentKindName(ComponentKind::kNic), "nic");
  EXPECT_EQ(ComponentKindName(ComponentKind::kPcieSwitch), "pcie_switch");
  EXPECT_EQ(LinkKindName(LinkKind::kInterHost), "inter_host");
}

TEST(DirectedLinkTest, DenseIndex) {
  EXPECT_EQ(DirectedIndex(DirectedLink{3, true}), 6);
  EXPECT_EQ(DirectedIndex(DirectedLink{3, false}), 7);
  EXPECT_EQ(DirectedIndex(DirectedLink{0, true}), 0);
}

}  // namespace
}  // namespace mihn::topology
