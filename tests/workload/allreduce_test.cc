#include "src/workload/allreduce.h"

#include <gtest/gtest.h>

#include "src/host/host_network.h"
#include "src/workload/sources.h"

namespace mihn::workload {
namespace {

using sim::Bandwidth;
using sim::TimeNs;

HostNetwork::Options DgxQuiet() {
  HostNetwork::Options options;
  options.preset = HostNetwork::Preset::kDgxClass;
  options.autostart = HostNetwork::Autostart::kNone;
  return options;
}

TEST(AllReduceTest, CompletesIterations) {
  sim::Simulation sim;
  HostNetwork host(sim, DgxQuiet());
  RingAllReduce::Config config;
  config.gpus = host.server().gpus;
  config.tensor_bytes = 64LL * 1024 * 1024;
  config.compute_time = TimeNs::Millis(1);
  RingAllReduce ar(host.fabric(), config);
  ar.Start();
  host.RunFor(TimeNs::Millis(500));
  ar.Stop();
  EXPECT_GT(ar.iterations(), 3);
  EXPECT_GT(ar.comm_ms().mean(), 0.0);
  EXPECT_GT(ar.LastBusBandwidthGBps(), 1.0);
  EXPECT_TRUE(host.fabric().ActiveFlows().empty());
}

TEST(AllReduceTest, RequiresAtLeastTwoGpus) {
  sim::Simulation sim;
  HostNetwork host(sim, DgxQuiet());
  RingAllReduce::Config config;
  config.gpus = {host.server().gpus[0]};
  RingAllReduce ar(host.fabric(), config);
  ar.Start();
  EXPECT_FALSE(ar.running());
}

TEST(AllReduceTest, TwoGpuRingOnSameSwitchIsFast) {
  // gpu0 and gpu1 share one PCIe switch: the ring is 2 hops each way
  // through the switch, at PCIe speed.
  sim::Simulation sim;
  HostNetwork host(sim, DgxQuiet());
  RingAllReduce::Config config;
  config.gpus = {host.server().gpus[0], host.server().gpus[1]};
  config.tensor_bytes = 64LL * 1024 * 1024;
  config.compute_time = TimeNs::Millis(1);
  RingAllReduce ar(host.fabric(), config);
  ar.Start();
  host.RunFor(TimeNs::Millis(200));
  ar.Stop();
  ASSERT_GT(ar.iterations(), 1);
  // N=2: 2 steps of chunk=32MiB; each step is two opposing transfers over
  // the switch (~29 GB/s effective each): ~1.2ms per step, ~2.3ms comm.
  EXPECT_GT(ar.comm_ms().mean(), 1.0);
  EXPECT_LT(ar.comm_ms().mean(), 6.0);
}

TEST(AllReduceTest, CrossSocketRingIsSlowerThanLocal) {
  sim::Simulation sim;
  HostNetwork host(sim, DgxQuiet());
  const auto& gpus = host.server().gpus;
  RingAllReduce::Config local;
  local.gpus = {gpus[0], gpus[1]};  // Same switch.
  local.tensor_bytes = 64LL * 1024 * 1024;
  local.compute_time = TimeNs::Millis(1);
  RingAllReduce local_ring(host.fabric(), local);
  local_ring.Start();
  host.RunFor(TimeNs::Millis(200));
  local_ring.Stop();

  RingAllReduce::Config cross = local;
  cross.gpus = {gpus[0], gpus.back()};  // Crosses the inter-socket fabric.
  cross.name = "cross";
  RingAllReduce cross_ring(host.fabric(), cross);
  cross_ring.Start();
  host.RunFor(TimeNs::Millis(200));
  cross_ring.Stop();

  ASSERT_GT(local_ring.iterations(), 0);
  ASSERT_GT(cross_ring.iterations(), 0);
  // The cross-socket path has more hops and higher latency but the
  // inter-socket links are wide (46 GB/s); comm should be same-or-slower,
  // never faster.
  EXPECT_GE(cross_ring.comm_ms().mean(), local_ring.comm_ms().mean() * 0.99);
}

TEST(AllReduceTest, ContentionSlowsTheRing) {
  sim::Simulation sim;
  HostNetwork host(sim, DgxQuiet());
  RingAllReduce::Config config;
  config.gpus = host.server().gpus;
  config.tensor_bytes = 32LL * 1024 * 1024;
  config.compute_time = TimeNs::Millis(1);
  RingAllReduce ar(host.fabric(), config);
  ar.Start();
  host.RunFor(TimeNs::Millis(300));
  const double before = ar.comm_ms().mean();

  // Saturate one ring edge's PCIe switch.
  StreamSource::Config bulk;
  bulk.src = host.server().gpus[0];
  bulk.dst = host.server().sockets[0];
  StreamSource stream(host.fabric(), bulk);
  stream.Start();
  host.RunFor(TimeNs::Millis(300));
  ar.Stop();
  const double after = ar.comm_ms().max();
  EXPECT_GT(after, before * 1.3);
}

TEST(AllReduceTest, StopMidIterationCleansUp) {
  sim::Simulation sim;
  HostNetwork host(sim, DgxQuiet());
  RingAllReduce::Config config;
  config.gpus = host.server().gpus;
  config.tensor_bytes = 1LL * 1024 * 1024 * 1024;  // Long steps.
  RingAllReduce ar(host.fabric(), config);
  ar.Start();
  host.RunFor(TimeNs::Millis(1));  // Mid-step.
  EXPECT_FALSE(host.fabric().ActiveFlows().empty());
  ar.Stop();
  EXPECT_TRUE(host.fabric().ActiveFlows().empty());
  host.RunFor(TimeNs::Millis(100));
  EXPECT_EQ(ar.iterations(), 0);
}

}  // namespace
}  // namespace mihn::workload
