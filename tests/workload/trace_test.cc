#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include "src/host/host_network.h"

namespace mihn::workload {
namespace {

using sim::TimeNs;

HostNetwork::Options Quiet() {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  return options;
}

std::vector<TraceEvent> SampleTrace() {
  return {
      {TimeNs::Millis(1), "ssd0", "s0.mc0.dimm0", 1'000'000, 1, false},
      {TimeNs::Millis(2), "nic0", "s0", 2'000'000, 2, true},
      {TimeNs::Millis(3), "gpu0", "s0.mc0.dimm1", 500'000, 1, false},
  };
}

TEST(TraceTest, CsvRoundTrip) {
  const auto events = SampleTrace();
  const std::string csv = TraceToCsv(events);
  const TraceParseResult parsed = TraceFromCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.events, events);
}

TEST(TraceTest, ParseErrors) {
  EXPECT_NE(TraceFromCsv("").error, "");
  EXPECT_NE(TraceFromCsv("wrong,header\n").error, "");
  EXPECT_NE(TraceFromCsv("at_ns,src,dst,bytes,tenant,ddio\n1,2,3\n").error, "");
  EXPECT_NE(TraceFromCsv("at_ns,src,dst,bytes,tenant,ddio\nabc,a,b,1,1,0\n").error, "");
  // Error cites the line.
  EXPECT_NE(TraceFromCsv("at_ns,src,dst,bytes,tenant,ddio\n1,a,b,1,1,0\nxx,a,b\n")
                .error.find("line 3"),
            std::string::npos);
}

TEST(TraceTest, ReplayIssuesAllTransfers) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  TraceReplayer::Config config;
  config.events = SampleTrace();
  TraceReplayer replayer(host.fabric(), config);
  replayer.Start();
  host.RunFor(TimeNs::Millis(100));
  EXPECT_EQ(replayer.issued(), 3);
  EXPECT_EQ(replayer.skipped(), 0);
  EXPECT_EQ(replayer.completed(), 3);
  EXPECT_GT(replayer.sojourn_us().mean(), 0.0);
}

TEST(TraceTest, ReplayRespectsTimestamps) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  TraceReplayer::Config config;
  config.events = {{TimeNs::Millis(5), "ssd0", "s0.mc0.dimm0", 100, 1, false}};
  TraceReplayer replayer(host.fabric(), config);
  replayer.Start();
  host.RunFor(TimeNs::Millis(4));
  EXPECT_EQ(replayer.issued(), 0);
  host.RunFor(TimeNs::Millis(2));
  EXPECT_EQ(replayer.issued(), 1);
}

TEST(TraceTest, TimeScaleStretchesTheSchedule) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  TraceReplayer::Config config;
  config.events = {{TimeNs::Millis(5), "ssd0", "s0.mc0.dimm0", 100, 1, false}};
  config.time_scale = 2.0;
  TraceReplayer replayer(host.fabric(), config);
  replayer.Start();
  host.RunFor(TimeNs::Millis(9));
  EXPECT_EQ(replayer.issued(), 0);
  host.RunFor(TimeNs::Millis(2));
  EXPECT_EQ(replayer.issued(), 1);
}

TEST(TraceTest, UnknownComponentsAreSkippedNotFatal) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  TraceReplayer::Config config;
  config.events = {{TimeNs::Millis(1), "nope", "s0", 100, 1, false},
                   {TimeNs::Millis(2), "ssd0", "s0.mc0.dimm0", 100, 1, false}};
  TraceReplayer replayer(host.fabric(), config);
  replayer.Start();
  host.RunFor(TimeNs::Millis(50));
  EXPECT_EQ(replayer.skipped(), 1);
  EXPECT_EQ(replayer.issued(), 1);
}

TEST(TraceTest, StopCancelsRemainingEvents) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  TraceReplayer::Config config;
  config.events = SampleTrace();
  TraceReplayer replayer(host.fabric(), config);
  replayer.Start();
  host.RunFor(TimeNs::Micros(1500));  // Only the first event has fired.
  replayer.Stop();
  host.RunFor(TimeNs::Millis(50));
  EXPECT_EQ(replayer.issued(), 1);
}

TEST(TraceTest, DdioFlagCarriesThrough) {
  sim::Simulation sim;
  HostNetwork host(sim, Quiet());
  fabric::FabricConfig tiny_cache;
  tiny_cache.way_bytes = 10 * 1024;
  tiny_cache.ddio_ways = 1;
  host.fabric().SetConfig(tiny_cache);
  TraceReplayer::Config config;
  // A large elastic-duration DDIO write: spill appears while in flight.
  config.events = {{TimeNs::Millis(1), "nic0", "s0", 500'000'000, 7, true}};
  TraceReplayer replayer(host.fabric(), config);
  replayer.Start();
  host.RunFor(TimeNs::Millis(5));
  EXPECT_LT(host.fabric().CacheStats(host.server().sockets[0]).hit_rate, 1.0);
}

}  // namespace
}  // namespace mihn::workload
