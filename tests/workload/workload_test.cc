#include <gtest/gtest.h>

#include "src/host/host_network.h"
#include "src/workload/kv_client.h"
#include "src/workload/ml_trainer.h"
#include "src/workload/sources.h"

namespace mihn::workload {
namespace {

using sim::Bandwidth;
using sim::TimeNs;

HostNetwork::Options QuietOptions() {
  HostNetwork::Options options;
  options.autostart = HostNetwork::Autostart::kNone;
  options.manager.mode = manager::ManagerConfig::Mode::kOff;
  return options;
}

TEST(KvClientTest, CompletesOpsAtExpectedUnloadedLatency) {
  sim::Simulation sim;
  HostNetwork host(sim, QuietOptions());
  KvClient::Config config;
  config.client = host.server().external_hosts[0];
  config.server = host.server().sockets[0];
  config.concurrency = 1;
  config.service_time = TimeNs::Micros(1);
  KvClient kv(host.fabric(), config);
  kv.Start();
  host.RunFor(TimeNs::Millis(10));
  kv.Stop();
  EXPECT_GT(kv.completed_ops(), 100);
  // Unloaded: ~2x path latency (couple of us) + 1 us service; well under 20 us.
  EXPECT_GT(kv.latency_us().mean(), 1.0);
  EXPECT_LT(kv.latency_us().Percentile(0.99), 20.0);
}

TEST(KvClientTest, ConcurrencyScalesThroughput) {
  sim::Simulation sim;
  HostNetwork host(sim, QuietOptions());
  KvClient::Config config;
  config.client = host.server().external_hosts[0];
  config.server = host.server().sockets[0];
  config.concurrency = 1;
  KvClient one(host.fabric(), config);
  config.concurrency = 8;
  config.name = "kv8";
  KvClient eight(host.fabric(), config);
  one.Start();
  eight.Start();
  host.RunFor(TimeNs::Millis(10));
  EXPECT_GT(eight.completed_ops(), one.completed_ops() * 4);
}

TEST(KvClientTest, CongestionInflatesLatency) {
  sim::Simulation sim;
  HostNetwork host(sim, QuietOptions());
  const auto& server = host.server();
  KvClient::Config config;
  config.client = server.external_hosts[0];
  config.server = server.sockets[0];
  config.concurrency = 2;
  KvClient kv(host.fabric(), config);
  kv.Start();
  host.RunFor(TimeNs::Millis(5));
  const double before_p50 = kv.latency_us().Percentile(0.5);

  // Saturate the PCIe path the KV traffic shares (nic0's switch uplink) in
  // both directions — requests and responses both queue.
  StreamSource::Config up;
  up.src = server.gpus[0];  // Same switch as nic0.
  up.dst = server.sockets[0];
  StreamSource up_stream(host.fabric(), up);
  up_stream.Start();
  StreamSource::Config down;
  down.src = server.sockets[0];
  down.dst = server.gpus[0];
  StreamSource down_stream(host.fabric(), down);
  down_stream.Start();
  host.RunFor(TimeNs::Millis(5));
  // Each direction gains one saturated PCIe switch hop: ~1.4 us of queueing
  // per direction at the 20x inflation cap.
  const double after_p99 = kv.latency_us().Percentile(0.99);
  EXPECT_GT(after_p99, before_p50 + 2.0);
}

TEST(KvClientTest, StopHaltsTraffic) {
  sim::Simulation sim;
  HostNetwork host(sim, QuietOptions());
  KvClient::Config config;
  config.client = host.server().external_hosts[0];
  config.server = host.server().sockets[0];
  KvClient kv(host.fabric(), config);
  kv.Start();
  host.RunFor(TimeNs::Millis(1));
  kv.Stop();
  const int64_t ops = kv.completed_ops();
  host.RunFor(TimeNs::Millis(5));
  EXPECT_EQ(kv.completed_ops(), ops);
}

TEST(MlTrainerTest, IterationsCompleteWithExpectedTiming) {
  sim::Simulation sim;
  HostNetwork host(sim, QuietOptions());
  const auto& server = host.server();
  MlTrainer::Config config;
  config.data_source = server.dimms[0];
  config.gpu = server.gpus[0];
  config.batch_bytes = 64LL * 1024 * 1024;  // 64 MiB.
  config.compute_time = TimeNs::Millis(5);
  MlTrainer trainer(host.fabric(), config);
  trainer.Start();
  host.RunFor(TimeNs::Millis(200));
  trainer.Stop();
  EXPECT_GT(trainer.iterations(), 10);
  // Load at PCIe-ish speed (~29 GB/s effective): ~2.2ms; +5ms compute.
  EXPECT_GT(trainer.iteration_ms().mean(), 5.0);
  EXPECT_LT(trainer.iteration_ms().mean(), 15.0);
  EXPECT_GT(trainer.load_bandwidth_gbps().mean(), 5.0);
}

TEST(MlTrainerTest, GradientPushExtendsIteration) {
  sim::Simulation sim;
  HostNetwork host(sim, QuietOptions());
  const auto& server = host.server();
  MlTrainer::Config config;
  config.data_source = server.dimms[0];
  config.gpu = server.gpus[0];
  config.batch_bytes = 16LL * 1024 * 1024;
  config.compute_time = TimeNs::Millis(1);
  MlTrainer plain(host.fabric(), config);
  config.gradient_sink = server.external_hosts[0];
  config.gradient_bytes = 64LL * 1024 * 1024;
  config.name = "ml_grad";
  MlTrainer with_grad(host.fabric(), config);

  plain.Start();
  host.RunFor(TimeNs::Millis(100));
  plain.Stop();
  with_grad.Start();
  host.RunFor(TimeNs::Millis(100));
  with_grad.Stop();
  EXPECT_GT(with_grad.iteration_ms().mean(), plain.iteration_ms().mean());
}

TEST(StreamSourceTest, AchievesDemandAndStops) {
  sim::Simulation sim;
  HostNetwork host(sim, QuietOptions());
  const auto& server = host.server();
  StreamSource::Config config;
  config.src = server.ssds[0];
  config.dst = server.dimms[0];
  config.demand = Bandwidth::GBps(5);
  StreamSource stream(host.fabric(), config);
  stream.Start();
  EXPECT_TRUE(stream.running());
  EXPECT_DOUBLE_EQ(stream.AchievedRate().ToGBps(), 5.0);
  stream.Stop();
  EXPECT_FALSE(stream.running());
  EXPECT_TRUE(stream.AchievedRate().IsZero());
}

TEST(StreamSourceTest, ElasticStreamSaturatesPath) {
  sim::Simulation sim;
  HostNetwork host(sim, QuietOptions());
  const auto& server = host.server();
  StreamSource::Config config;
  config.src = server.ssds[0];
  config.dst = server.dimms[0];
  StreamSource stream(host.fabric(), config);
  stream.Start();
  // Bottleneck is PCIe-class (~32 GB/s raw, ~29 effective).
  EXPECT_GT(stream.AchievedRate().ToGBps(), 20.0);
}

TEST(LoopbackRdmaTest, LoadsPcieBothDirections) {
  sim::Simulation sim;
  HostNetwork host(sim, QuietOptions());
  const auto& server = host.server();
  LoopbackRdma::Config config;
  config.nic = server.nics[0];
  config.socket = server.sockets[0];
  LoopbackRdma loopback(host.fabric(), config);
  loopback.Start();
  EXPECT_GT(loopback.ReadRate().ToGBps(), 10.0);
  EXPECT_GT(loopback.WriteRate().ToGBps(), 10.0);
  // Both directions of the NIC's switch downlink are loaded.
  const auto path = *host.fabric().Route(server.nics[0], server.sockets[0]);
  const topology::DirectedLink first_hop = path.hops[0];
  EXPECT_GT(host.fabric().Utilization(first_hop), 0.9);
  EXPECT_GT(host.fabric().Utilization({first_hop.link, !first_hop.forward}), 0.9);
  loopback.Stop();
  EXPECT_DOUBLE_EQ(host.fabric().Utilization(first_hop), 0.0);
}

TEST(PoissonSourceTest, ArrivalCountMatchesRate) {
  sim::Simulation sim;
  HostNetwork host(sim, QuietOptions());
  const auto& server = host.server();
  PoissonSource::Config config;
  config.src = server.external_hosts[0];
  config.dst = server.sockets[0];
  config.arrivals_per_sec = 10'000.0;
  config.mean_bytes = 4096;
  PoissonSource source(host.fabric(), config);
  source.Start();
  host.RunFor(TimeNs::Millis(100));
  source.Stop();
  // Expect ~1000 arrivals; Poisson sigma ~32.
  EXPECT_NEAR(static_cast<double>(source.started_transfers()), 1000.0, 150.0);
  EXPECT_GT(source.completed_transfers(), 0);
  EXPECT_GT(source.sojourn_us().mean(), 0.0);
}

TEST(PoissonSourceTest, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    sim::Simulation sim;
    HostNetwork host(sim, QuietOptions());
    PoissonSource::Config config;
    config.src = host.server().external_hosts[0];
    config.dst = host.server().sockets[0];
    config.arrivals_per_sec = 5'000.0;
    PoissonSource source(host.fabric(), config);
    source.Start();
    host.RunFor(TimeNs::Millis(50));
    return source.started_transfers();
  };
  EXPECT_EQ(run(), run());
}

TEST(PoissonSourceTest, ParetoSizesVary) {
  sim::Simulation sim;
  HostNetwork host(sim, QuietOptions());
  PoissonSource::Config config;
  config.src = host.server().external_hosts[0];
  config.dst = host.server().sockets[0];
  // Low arrival rate and megabyte-scale sizes so sojourns are size-driven:
  // small transfers sit on the ~30 us delivery-latency floor (a transfer
  // saturates its own path), so the tail must come from the size tail.
  config.arrivals_per_sec = 500.0;
  config.pareto_alpha = 1.2;
  config.mean_bytes = 1024 * 1024;
  PoissonSource source(host.fabric(), config);
  source.Start();
  host.RunFor(TimeNs::Millis(400));
  source.Stop();
  EXPECT_GT(source.completed_transfers(), 100);
  // Heavy tail: p99 sojourn well above median.
  EXPECT_GT(source.sojourn_us().Percentile(0.99), source.sojourn_us().Percentile(0.5) * 2);
}

TEST(BurstySourceTest, TogglesOnAndOff) {
  sim::Simulation sim;
  HostNetwork host(sim, QuietOptions());
  BurstySource::Config config;
  config.src = host.server().ssds[0];
  config.dst = host.server().dimms[0];
  config.mean_on = TimeNs::Millis(2);
  config.mean_off = TimeNs::Millis(2);
  BurstySource bursty(host.fabric(), config);
  bursty.Start();
  host.RunFor(TimeNs::Millis(100));
  EXPECT_GT(bursty.bursts(), 5);
  bursty.Stop();
  EXPECT_FALSE(bursty.IsOn());
  // No lingering flows after stop.
  EXPECT_TRUE(host.fabric().ActiveFlows().empty());
}

TEST(WorkloadBaseTest, StartIsIdempotent) {
  sim::Simulation sim;
  HostNetwork host(sim, QuietOptions());
  StreamSource::Config config;
  config.src = host.server().ssds[0];
  config.dst = host.server().dimms[0];
  config.demand = Bandwidth::GBps(1);
  StreamSource stream(host.fabric(), config);
  stream.Start();
  stream.Start();
  EXPECT_EQ(host.fabric().ActiveFlows().size(), 1u);
}

}  // namespace
}  // namespace mihn::workload
