// mihn_chaos: run a deterministic fault-injection campaign — or a ranked
// policy sweep — from a .chaos config file and emit the JSON report.
//
//   mihn_chaos <campaign.chaos> [-o report.json] [--trials N] [--seed N]
//              [--workers N]
//   mihn_chaos --grid <sweep.chaos> [-o report.json] [--trials N]
//              [--seed N] [--workers N]
//
// Without -o the report goes to stdout. --workers N fans trials over a
// worker pool; reports are byte-identical at every worker count (0 =
// serial). Exit codes: 0 on success, 1 on a usage/parse/setup error, 2
// when a campaign ran but a hard (link-death) fault went undetected — so
// CI can gate on "the anomaly stack caught every kill we injected". In
// --grid mode a cell whose campaign fails setup also exits 1.

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "src/chaos/campaign.h"
#include "src/chaos/campaign_file.h"
#include "src/chaos/executor.h"
#include "src/chaos/report.h"
#include "src/chaos/sweep.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <campaign.chaos> [-o report.json] [--trials N] [--seed N] "
               "[--workers N]\n"
               "       %s --grid <sweep.chaos> [-o report.json] [--trials N] [--seed N] "
               "[--workers N]\n",
               argv0, argv0);
  return 1;
}

// Strict flag-value parsing: garbage or out-of-domain values are hard
// errors (exit 1), never silently zero.
bool FlagPositiveInt(const char* flag, const char* value, int* out) {
  if (!mihn::chaos::ParseNonNegativeInt(value, out) || *out < 1) {
    std::fprintf(stderr, "mihn_chaos: %s wants a positive integer, got '%s'\n", flag,
                 value);
    return false;
  }
  return true;
}

bool FlagNonNegativeInt(const char* flag, const char* value, int* out) {
  if (!mihn::chaos::ParseNonNegativeInt(value, out)) {
    std::fprintf(stderr, "mihn_chaos: %s wants a non-negative integer, got '%s'\n", flag,
                 value);
    return false;
  }
  return true;
}

bool FlagUint64(const char* flag, const char* value, uint64_t* out) {
  if (!mihn::chaos::ParseUint64Value(value, out)) {
    std::fprintf(stderr, "mihn_chaos: %s wants an unsigned integer, got '%s'\n", flag,
                 value);
    return false;
  }
  return true;
}

int RunCampaign(const std::string& path, const std::string& out_path, int trials,
                uint64_t seed, bool have_seed, int workers) {
  mihn::chaos::CampaignConfig config;
  std::string error;
  if (!mihn::chaos::LoadCampaignFile(path, &config, &error)) {
    std::fprintf(stderr, "mihn_chaos: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  if (trials > 0) {
    config.trials = trials;
  }
  if (have_seed) {
    config.base_seed = seed;
  }

  mihn::chaos::Campaign campaign(std::move(config));
  mihn::chaos::TrialExecutor executor(workers);
  const mihn::chaos::CampaignResult result =
      workers > 1 ? campaign.Run(executor) : campaign.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "mihn_chaos: campaign failed: %s\n", result.error.c_str());
    return 1;
  }

  if (out_path.empty()) {
    std::fputs(mihn::chaos::CampaignReportJson(result).c_str(), stdout);
  } else if (!mihn::chaos::WriteCampaignReport(result, out_path)) {
    std::fprintf(stderr, "mihn_chaos: cannot write %s\n", out_path.c_str());
    return 1;
  }

  std::fprintf(stderr,
               "mihn_chaos: %d trial(s), %d/%d faults detected (%d/%d hard), "
               "precision %.3f, mean detection latency %.3f ms\n",
               result.trials_completed, result.detected_total, result.faults_total,
               result.hard_detected_total, result.hard_faults_total, result.precision,
               result.mean_detection_latency_ms);
  return result.hard_detected_total == result.hard_faults_total ? 0 : 2;
}

int RunGrid(const std::string& path, const std::string& out_path, int trials,
            uint64_t seed, bool have_seed, int workers) {
  mihn::chaos::SweepConfig config;
  std::string error;
  if (!mihn::chaos::LoadSweepFile(path, &config, &error)) {
    std::fprintf(stderr, "mihn_chaos: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  if (trials > 0) {
    config.trials = trials;
  }
  if (have_seed) {
    config.seed = seed;
    config.has_seed = true;
  }

  mihn::chaos::Sweep sweep(std::move(config));
  mihn::chaos::TrialExecutor executor(workers);
  const mihn::chaos::SweepResult result = sweep.Run(executor);
  if (!result.ok()) {
    std::fprintf(stderr, "mihn_chaos: sweep failed: %s\n", result.error.c_str());
    return 1;
  }

  if (out_path.empty()) {
    std::fputs(mihn::chaos::SweepReportJson(result).c_str(), stdout);
  } else if (!mihn::chaos::WriteSweepReport(result, out_path)) {
    std::fprintf(stderr, "mihn_chaos: cannot write %s\n", out_path.c_str());
    return 1;
  }

  for (const mihn::chaos::SweepCellResult& cell : result.cells) {
    if (!cell.result.ok()) {
      std::fprintf(stderr, "mihn_chaos: cell %d (%s) failed: %s\n", cell.index,
                   cell.campaign.c_str(), cell.result.error.c_str());
    }
  }
  if (!result.ranking.empty()) {
    const mihn::chaos::SweepCellResult& best =
        result.cells[static_cast<size_t>(result.ranking.front())];
    std::fprintf(stderr,
                 "mihn_chaos: swept %d cell(s); best: campaign=%s preset=%s "
                 "scale=%g policy=%s (hard recall %.3f, mean recovery %.3f ms)\n",
                 static_cast<int>(result.cells.size()), best.campaign.c_str(),
                 best.preset.c_str(), best.fault_scale,
                 std::string(mihn::chaos::RecoveryPolicyName(best.policy)).c_str(),
                 best.result.hard_recall, best.result.mean_recovery_ms);
  }
  return result.all_cells_ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string out_path;
  bool grid = false;
  int trials_override = 0;
  uint64_t seed_override = 0;
  bool have_seed_override = false;
  int workers = 0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-o") == 0 || std::strcmp(arg, "--out") == 0) {
      if (++i >= argc) {
        return Usage(argv[0]);
      }
      out_path = argv[i];
    } else if (std::strcmp(arg, "--grid") == 0) {
      if (++i >= argc) {
        return Usage(argv[0]);
      }
      grid = true;
      config_path = argv[i];
    } else if (std::strcmp(arg, "--trials") == 0) {
      if (++i >= argc) {
        return Usage(argv[0]);
      }
      if (!FlagPositiveInt("--trials", argv[i], &trials_override)) {
        return 1;
      }
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (++i >= argc) {
        return Usage(argv[0]);
      }
      if (!FlagUint64("--seed", argv[i], &seed_override)) {
        return 1;
      }
      have_seed_override = true;
    } else if (std::strcmp(arg, "--workers") == 0) {
      if (++i >= argc) {
        return Usage(argv[0]);
      }
      if (!FlagNonNegativeInt("--workers", argv[i], &workers)) {
        return 1;
      }
    } else if (arg[0] != '-' && config_path.empty()) {
      config_path = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (config_path.empty()) {
    return Usage(argv[0]);
  }

  return grid ? RunGrid(config_path, out_path, trials_override, seed_override,
                        have_seed_override, workers)
              : RunCampaign(config_path, out_path, trials_override, seed_override,
                            have_seed_override, workers);
}
