// mihn_chaos: run a deterministic fault-injection campaign from a .chaos
// config file and emit the scored JSON report.
//
//   mihn_chaos <campaign.chaos> [-o report.json] [--trials N] [--seed N]
//
// Without -o the report goes to stdout. Exit codes: 0 on success, 1 on a
// usage/parse/setup error, 2 when the campaign ran but a hard (link-death)
// fault went undetected — so CI can gate on "the anomaly stack caught
// every kill we injected".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/chaos/campaign.h"
#include "src/chaos/campaign_file.h"
#include "src/chaos/report.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <campaign.chaos> [-o report.json] [--trials N] [--seed N]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string campaign_path;
  std::string out_path;
  int trials_override = 0;
  uint64_t seed_override = 0;
  bool have_seed_override = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-o") == 0 || std::strcmp(arg, "--out") == 0) {
      if (++i >= argc) {
        return Usage(argv[0]);
      }
      out_path = argv[i];
    } else if (std::strcmp(arg, "--trials") == 0) {
      if (++i >= argc) {
        return Usage(argv[0]);
      }
      trials_override = std::atoi(argv[i]);
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (++i >= argc) {
        return Usage(argv[0]);
      }
      seed_override = static_cast<uint64_t>(std::strtoull(argv[i], nullptr, 10));
      have_seed_override = true;
    } else if (campaign_path.empty()) {
      campaign_path = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (campaign_path.empty()) {
    return Usage(argv[0]);
  }

  mihn::chaos::CampaignConfig config;
  std::string error;
  if (!mihn::chaos::LoadCampaignFile(campaign_path, &config, &error)) {
    std::fprintf(stderr, "mihn_chaos: %s: %s\n", campaign_path.c_str(), error.c_str());
    return 1;
  }
  if (trials_override > 0) {
    config.trials = trials_override;
  }
  if (have_seed_override) {
    config.base_seed = seed_override;
  }

  mihn::chaos::Campaign campaign(std::move(config));
  const mihn::chaos::CampaignResult result = campaign.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "mihn_chaos: campaign failed: %s\n", result.error.c_str());
    return 1;
  }

  if (out_path.empty()) {
    std::fputs(mihn::chaos::CampaignReportJson(result).c_str(), stdout);
  } else if (!mihn::chaos::WriteCampaignReport(result, out_path)) {
    std::fprintf(stderr, "mihn_chaos: cannot write %s\n", out_path.c_str());
    return 1;
  }

  std::fprintf(stderr,
               "mihn_chaos: %d trial(s), %d/%d faults detected (%d/%d hard), "
               "precision %.3f, mean detection latency %.3f ms\n",
               static_cast<int>(result.results.size()), result.detected_total,
               result.faults_total, result.hard_detected_total, result.hard_faults_total,
               result.precision, result.mean_detection_latency_ms);
  return result.hard_detected_total == result.hard_faults_total ? 0 : 2;
}
