#include "tools/mihn_check/checker.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/mihn_check/include_graph.h"
#include "tools/mihn_check/lexer.h"

namespace mihn::check {
namespace {

// -- Per-file exemptions ------------------------------------------------------

bool IsOneOf(const std::string& rel_path, std::initializer_list<const char*> paths) {
  return std::any_of(paths.begin(), paths.end(),
                     [&](const char* p) { return rel_path == p; });
}

// The seeded randomness / virtual-clock sources: the only files allowed to
// touch nondeterminism primitives.
bool ExemptFromNondet(const std::string& rel_path) {
  return IsOneOf(rel_path,
                 {"src/sim/random.h", "src/sim/random.cc", "src/sim/time.h", "src/sim/time.cc"});
}

// The unit layer itself necessarily traffics in raw doubles.
bool ExemptFromUnitParams(const std::string& rel_path) {
  return IsOneOf(rel_path,
                 {"src/sim/units.h", "src/sim/units.cc", "src/sim/time.h", "src/sim/time.cc"});
}

bool IsHeader(const std::string& rel_path) {
  return rel_path.size() > 2 && rel_path.compare(rel_path.size() - 2, 2, ".h") == 0;
}

// -- Rule plumbing ------------------------------------------------------------

bool RuleOn(const Options& options, std::string_view family) {
  if (options.rules.empty()) {
    return true;
  }
  return std::any_of(options.rules.begin(), options.rules.end(),
                     [&](const std::string& r) { return r == family; });
}

struct RuleContext {
  const std::string& rel_path;
  const FileText& ft;
  std::vector<Finding>& findings;
};

void Report(RuleContext& ctx, size_t idx, const std::string& tag, const std::string& rule,
            const std::string& message) {
  if (IsSuppressed(ctx.ft.raw_lines, idx, tag)) {
    return;
  }
  ctx.findings.push_back(
      {ctx.rel_path, static_cast<int>(idx) + 1, rule,
       message + " (suppress with // mihn-check: " + tag + "(<reason>))"});
}

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// -- D1 unordered containers --------------------------------------------------

void RuleUnorderedContainer(RuleContext& ctx) {
  const std::vector<Token>& toks = ctx.ft.tokens;
  int last_line = -1;  // One finding per line, like the v1 per-line scan.
  for (size_t i = 2; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.line == last_line) {
      continue;
    }
    if (t.text != "unordered_map" && t.text != "unordered_set" &&
        t.text != "unordered_multimap" && t.text != "unordered_multiset") {
      continue;
    }
    if (!IsIdent(toks[i - 2], "std") || !IsPunct(toks[i - 1], "::")) {
      continue;
    }
    last_line = t.line;
    Report(ctx, static_cast<size_t>(t.line) - 1, "unordered-ok", "D1:unordered-container",
           "unordered container in simulation/output code: hash order leaks into event "
           "order and snapshots; use std::map/std::set or sort before iterating");
  }
}

// -- D2 nondeterminism sources ------------------------------------------------

void RuleNondetSource(RuleContext& ctx) {
  if (ExemptFromNondet(ctx.rel_path)) {
    return;
  }
  const std::vector<Token>& toks = ctx.ft.tokens;
  int last_line = -1;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.line == last_line) {
      continue;
    }
    const std::string_view x = t.text;
    bool hit = x == "srand" || x == "random_device" || x == "system_clock" ||
               x == "steady_clock" || x == "high_resolution_clock" || x == "mt19937" ||
               x == "clock_gettime" || x == "gettimeofday" || x == "drand48";
    if (!hit && (x == "rand" || x == "chrono") && i >= 2 && IsIdent(toks[i - 2], "std") &&
        IsPunct(toks[i - 1], "::")) {
      hit = true;
    }
    if (!hit && x == "time" && i + 1 < toks.size() && IsPunct(toks[i + 1], "(")) {
      hit = true;
    }
    if (!hit) {
      continue;
    }
    last_line = t.line;
    Report(ctx, static_cast<size_t>(t.line) - 1, "nondet-ok", "D2:nondet-source",
           "nondeterministic randomness/time source: draw from sim::Rng / sim::TimeNs "
           "(src/sim/random.*, src/sim/time.*) so runs stay a pure function of the seed");
  }
}

// -- D3 raw unit parameters in headers ----------------------------------------

// Identifier segments that imply a physical unit when typed as raw double.
bool IsUnitFlavoredName(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  static const std::initializer_list<const char*> kUnitSegments = {
      "gbps", "mbps", "kbps", "bps", "bw", "bandwidth", "latency", "ns", "bytes"};
  std::stringstream ss(name);
  std::string seg;
  while (std::getline(ss, seg, '_')) {
    if (std::any_of(kUnitSegments.begin(), kUnitSegments.end(),
                    [&](const char* u) { return seg == u; })) {
      return true;
    }
  }
  return false;
}

void RuleRawUnitParam(RuleContext& ctx) {
  if (!IsHeader(ctx.rel_path) || ExemptFromUnitParams(ctx.rel_path)) {
    return;
  }
  const std::vector<Token>& toks = ctx.ft.tokens;
  int paren_depth = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") {
        ++paren_depth;
      } else if (t.text == ")") {
        paren_depth = std::max(0, paren_depth - 1);
      }
      continue;
    }
    // Only parameters (paren depth >= 1) are considered — struct members
    // and return types stay legal.
    if (paren_depth >= 1 && IsIdent(t, "double") && i + 1 < toks.size() &&
        toks[i + 1].kind == TokKind::kIdent && IsUnitFlavoredName(std::string(toks[i + 1].text))) {
      Report(ctx, static_cast<size_t>(t.line) - 1, "units-ok", "D3:raw-unit-param",
             "raw double parameter '" + std::string(toks[i + 1].text) +
                 "' carries a unit in its name: pass sim::Bandwidth / sim::TimeNs so the "
                 "Gbps-vs-GBps factor of 8 cannot slip through this API");
    }
  }
}

// -- D4 float types and float-literal equality --------------------------------

void RuleFloat(RuleContext& ctx) {
  const std::vector<Token>& toks = ctx.ft.tokens;
  int last_type_line = -1;
  int last_eq_line = -1;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (IsIdent(t, "float") && t.line != last_type_line) {
      last_type_line = t.line;
      Report(ctx, static_cast<size_t>(t.line) - 1, "float-ok", "D4:float-type",
             "float narrows silently and diverges across compilers; use double");
    }
    if (t.kind == TokKind::kPunct && (t.text == "==" || t.text == "!=") &&
        t.line != last_eq_line) {
      size_t r = i + 1;
      if (r < toks.size() && (IsPunct(toks[r], "+") || IsPunct(toks[r], "-"))) {
        ++r;
      }
      const bool right = r < toks.size() && toks[r].kind == TokKind::kNumber &&
                         IsFloatLiteral(toks[r].text);
      const bool left =
          i > 0 && toks[i - 1].kind == TokKind::kNumber && IsFloatLiteral(toks[i - 1].text);
      if (right || left) {
        last_eq_line = t.line;
        Report(ctx, static_cast<size_t>(t.line) - 1, "float-eq-ok", "D4:float-eq",
               "==/!= against a floating-point literal: compare with an explicit tolerance, "
               "or annotate why exact equality is the intended semantics");
      }
    }
  }
}

// -- D5 header hygiene --------------------------------------------------------

std::string ExpectedGuard(const std::string& rel_path) {
  std::string guard = "MIHN_";
  for (const char c : rel_path) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

void RuleHeaderHygiene(RuleContext& ctx) {
  if (!IsHeader(ctx.rel_path)) {
    return;
  }
  const std::string expected = ExpectedGuard(ctx.rel_path);
  bool guard_seen = false;
  for (size_t i = 0; i < ctx.ft.code_lines.size(); ++i) {
    const std::string line = Trim(ctx.ft.code_lines[i]);
    if (!guard_seen && line.rfind("#ifndef", 0) == 0) {
      guard_seen = true;
      const std::string macro = Trim(line.substr(7));
      if (macro != expected) {
        Report(ctx, i, "guard-ok", "D5:include-guard",
               "include guard '" + macro + "' does not match path-derived '" + expected + "'");
      }
    }
    if (line.rfind("using namespace", 0) == 0 || line.find(" using namespace ") != std::string::npos) {
      Report(ctx, i, "header-ok", "D5:using-namespace",
             "'using namespace' in a header pollutes every includer; qualify names instead");
    }
  }
  if (!guard_seen) {
    Report(ctx, 0, "guard-ok", "D5:include-guard",
           "header has no #ifndef include guard (expected '" + ExpectedGuard(ctx.rel_path) + "')");
  }
}

// -- D8 api drift -------------------------------------------------------------

// Deprecated identifiers, banned as exact tokens (so SolveMaxMinReference,
// the retained oracle, never trips the SolveMaxMin ban).
struct BannedToken {
  const char* token;
  const char* hint;
  std::initializer_list<const char*> allowlist;  // Definition sites + differential tests.
};

const BannedToken kBannedTokens[] = {
    {"SolveMaxMin",
     "deprecated one-shot solver; use MaxMinSolver (Begin/AddFlow/Commit, or the retained "
     "SolveDelta path for incremental updates)",
     {}},  // Fully retired: even the solver sources no longer say the name.
};

// Deprecated headers, banned as include targets.
struct BannedInclude {
  const char* path;
  const char* hint;
  std::initializer_list<const char*> allowlist;
};

const BannedInclude kBannedIncludes[] = {
    {"src/diagnose/tools.h",
     "deleted free-function probe wrappers; use diagnose::Session "
     "(Ping/Trace/Perf/Capture with the common ProbeReport header)",
     {}},  // Fully retired: the header was deleted, the ban stops revivals.
};

void RuleApiDrift(RuleContext& ctx) {
  for (const BannedToken& ban : kBannedTokens) {
    if (IsOneOf(ctx.rel_path, ban.allowlist)) {
      continue;
    }
    int last_line = -1;
    for (const Token& t : ctx.ft.tokens) {
      if (t.kind != TokKind::kIdent || t.text != ban.token || t.line == last_line) {
        continue;
      }
      last_line = t.line;
      Report(ctx, static_cast<size_t>(t.line) - 1, "drift-ok", "D8:api-drift",
             "'" + std::string(ban.token) + "': " + ban.hint);
    }
  }
  for (const BannedInclude& ban : kBannedIncludes) {
    if (IsOneOf(ctx.rel_path, ban.allowlist)) {
      continue;
    }
    for (const IncludeRef& inc : ctx.ft.includes) {
      if (inc.quoted && inc.path == ban.path) {
        Report(ctx, static_cast<size_t>(inc.line) - 1, "drift-ok", "D8:api-drift",
               "#include \"" + std::string(ban.path) + "\": " + ban.hint);
      }
    }
  }
}

// -- D8 owned clock -----------------------------------------------------------
//
// HostNetwork's owning constructors (which allocate a private
// sim::Simulation) are compatibility wrappers for downstream users; repo
// code must use the clock-injection constructors so hosts can share one
// virtual clock (the fleet seam). Lexical heuristic: at every HostNetwork
// construction expression, the first constructor argument must mention an
// identifier containing "sim" — `sim`, `simulation()`, `*sim_`,
// `fleet.simulation()` all qualify; `options`, `Quiet()`, empty argument
// lists do not. Misclassification degrades to a false finding carrying the
// clock-ok suppression hint, never a crash.

// Wrapper definition sites, plus the one test that exercises the owning
// wrappers' equivalence with the injected path.
bool ExemptFromOwnedClock(const std::string& rel_path) {
  return IsOneOf(rel_path, {"src/host/host_network.h", "src/host/host_network.cc",
                            "tests/host/host_network_test.cc"});
}

bool MentionsSimIdent(const std::vector<Token>& toks, size_t begin, size_t end) {
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) {
      continue;
    }
    std::string lower(toks[i].text);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (lower.find("sim") != std::string::npos) {
      return true;
    }
  }
  return false;
}

// The end (exclusive) of the first constructor argument starting at
// |begin|: the first top-level ',' or the matching close of |open|.
size_t FirstArgEnd(const std::vector<Token>& toks, size_t begin, std::string_view open) {
  const std::string_view close = open == "(" ? ")" : "}";
  int depth = 0;
  for (size_t i = begin; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) {
      continue;
    }
    if (t.text == "(" || t.text == "{" || t.text == "[") {
      ++depth;
    } else if (t.text == ")" || t.text == "}" || t.text == "]") {
      if (depth == 0 && t.text == close) {
        return i;
      }
      --depth;
    } else if (t.text == "," && depth == 0) {
      return i;
    }
  }
  return toks.size();
}

void RuleOwnedClock(RuleContext& ctx) {
  if (ExemptFromOwnedClock(ctx.rel_path)) {
    return;
  }
  const std::vector<Token>& toks = ctx.ft.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "HostNetwork")) {
      continue;
    }
    // Skip non-construction mentions: class/struct declarations, qualified
    // names (HostNetwork::Preset), and pure type positions (HostNetwork&,
    // HostNetwork*, parameter lists).
    if (i > 0 && (IsIdent(toks[i - 1], "class") || IsIdent(toks[i - 1], "struct"))) {
      continue;
    }
    if (i + 1 >= toks.size()) {
      continue;
    }
    size_t args_begin = 0;
    std::string_view open;
    const Token& next = toks[i + 1];
    if (IsPunct(next, ">") && i + 2 < toks.size() && IsPunct(toks[i + 2], "(")) {
      // make_unique<HostNetwork>(...) and friends.
      args_begin = i + 3;
      open = "(";
    } else if (next.kind == TokKind::kIdent) {
      // HostNetwork host(...);  HostNetwork host{...};  HostNetwork host;
      if (i + 2 >= toks.size()) {
        continue;
      }
      const Token& after_name = toks[i + 2];
      if (IsPunct(after_name, ";")) {
        Report(ctx, static_cast<size_t>(toks[i].line) - 1, "clock-ok", "D8:owned-clock",
               "default-constructed HostNetwork owns a private clock; inject a shared "
               "sim::Simulation (HostNetwork host(sim)) so hosts can share virtual time");
        continue;
      }
      if (!IsPunct(after_name, "(") && !IsPunct(after_name, "{")) {
        continue;
      }
      args_begin = i + 3;
      open = after_name.text;
    } else {
      continue;
    }
    if (args_begin == 0) {
      continue;
    }
    const size_t args_end = FirstArgEnd(toks, args_begin, open);
    if (args_end == args_begin || !MentionsSimIdent(toks, args_begin, args_end)) {
      Report(ctx, static_cast<size_t>(toks[i].line) - 1, "clock-ok", "D8:owned-clock",
             "HostNetwork constructed through an owning (private-clock) constructor; pass "
             "a caller-owned sim::Simulation as the first argument instead");
    }
  }
}

// -- D7 mutable state & D9 guarded-by (shared structural pass) ----------------
//
// A lightweight scope walk over the token stream: every '{' is classified
// from the declaration tokens preceding it (namespace / class / enum /
// function / brace-initializer), declarations are segmented on ';' (and on
// access specifiers inside classes), and each segment is analyzed once for
// both rules. This is deliberately a heuristic parse — it only has to be
// exact on the constructs this codebase and the fixtures actually use, and
// misclassification degrades to a missed finding, never a crash.

enum class ScopeKind { kNamespace, kClass, kEnum, kFunction, kInit };

bool IsTsaMarker(std::string_view x) {
  return x == "MIHN_GUARDED_BY" || x == "MIHN_PT_GUARDED_BY" || x == "MIHN_REQUIRES" ||
         x == "MIHN_EXCLUDES" || x == "MIHN_ACQUIRE" || x == "MIHN_RELEASE" ||
         x == "MIHN_CAPABILITY" || x == "MIHN_SCOPED_CAPABILITY" ||
         x == "MIHN_RETURN_CAPABILITY" || x == "MIHN_NO_THREAD_SAFETY_ANALYSIS";
}

// Tokens from lines that are not preprocessor directives (directive bodies
// would corrupt scope tracking; macro *uses* still appear because they sit
// on ordinary lines).
std::vector<Token> StructuralTokens(const FileText& ft) {
  std::vector<bool> pp(ft.code_lines.size(), false);
  bool continued = false;
  for (size_t i = 0; i < ft.code_lines.size(); ++i) {
    const std::string t = Trim(ft.code_lines[i]);
    const bool is_pp = continued || (!t.empty() && t[0] == '#');
    pp[i] = is_pp;
    continued = is_pp && !t.empty() && t.back() == '\\';
  }
  std::vector<Token> out;
  out.reserve(ft.tokens.size());
  for (const Token& t : ft.tokens) {
    const size_t idx = static_cast<size_t>(t.line) - 1;
    if (idx < pp.size() && pp[idx]) {
      continue;
    }
    out.push_back(t);
  }
  return out;
}

ScopeKind ClassifyBrace(const std::vector<Token>& toks, size_t b, size_t brace,
                        ScopeKind parent) {
  if (parent == ScopeKind::kFunction) {
    return ScopeKind::kFunction;  // Blocks, lambdas and init-lists inside code.
  }
  if (parent == ScopeKind::kInit || parent == ScopeKind::kEnum) {
    return ScopeKind::kInit;
  }
  bool saw_namespace = false;
  bool saw_class = false;
  bool saw_enum = false;
  bool saw_eq = false;
  int paren = 0;
  for (size_t i = b; i < brace; ++i) {
    const Token& t = toks[i];
    if (IsIdent(t, "template") && i + 1 < brace && IsPunct(toks[i + 1], "<")) {
      int angle = 0;  // Skip the parameter list: `template <class T>` is not a class.
      size_t j = i + 1;
      for (; j < brace; ++j) {
        if (IsPunct(toks[j], "<")) {
          ++angle;
        } else if (IsPunct(toks[j], ">") && --angle == 0) {
          break;
        }
      }
      i = j;
      continue;
    }
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") {
        ++paren;
      } else if (t.text == ")") {
        paren = std::max(0, paren - 1);
      } else if (t.text == "=" && paren == 0) {
        saw_eq = true;
      }
      continue;
    }
    if (t.kind != TokKind::kIdent || paren != 0) {
      continue;
    }
    if (t.text == "namespace") {
      saw_namespace = true;
    } else if (t.text == "class" || t.text == "struct" || t.text == "union") {
      saw_class = true;
    } else if (t.text == "enum") {
      saw_enum = true;
    }
  }
  if (saw_enum) {
    return ScopeKind::kEnum;
  }
  if (saw_namespace) {
    return ScopeKind::kNamespace;
  }
  if (saw_class) {
    return ScopeKind::kClass;
  }
  if (b >= brace) {
    return ScopeKind::kInit;
  }
  if (IsIdent(toks[b], "extern")) {
    return ScopeKind::kNamespace;  // extern "C" { ... } holds declarations.
  }
  if (saw_eq) {
    return ScopeKind::kInit;
  }
  const Token& last = toks[brace - 1];
  if (IsPunct(last, ")") ||
      (last.kind == TokKind::kIdent &&
       (last.text == "const" || last.text == "noexcept" || last.text == "override" ||
        last.text == "final" || last.text == "try"))) {
    return ScopeKind::kFunction;
  }
  return ScopeKind::kInit;  // `int x_{0}`, aggregate initializers, ...
}

struct SegmentInfo {
  bool skip = false;         // Not a variable/member declaration.
  bool is_function = false;  // '(' at top level before any '=' — a declarator of a callable.
  bool has_const = false;
  bool has_static = false;
  bool has_guard = false;       // MIHN_GUARDED_BY / MIHN_PT_GUARDED_BY present.
  bool has_tsa_marker = false;  // Any thread-safety annotation present.
  bool is_mutex = false;        // Declares the capability itself.
  bool is_atomic = false;       // std::atomic members are internally synchronized.
  int first_line = 0;
  std::string name;  // Last top-level identifier before '=' / '[' — the declared name.
};

SegmentInfo AnalyzeDecl(const std::vector<Token>& toks, size_t b, size_t e) {
  SegmentInfo info;
  if (b >= e) {
    info.skip = true;
    return info;
  }
  info.first_line = toks[b].line;
  const Token& first = toks[b];
  if (first.kind == TokKind::kIdent &&
      (first.text == "using" || first.text == "typedef" || first.text == "friend" ||
       first.text == "template" || first.text == "extern" || first.text == "static_assert" ||
       first.text == "namespace" || first.text == "class" || first.text == "struct" ||
       first.text == "union" || first.text == "enum" || first.text == "return" ||
       first.text == "goto")) {
    info.skip = true;
    return info;
  }
  int paren = 0;
  int angle = 0;
  bool past_eq = false;
  size_t ident_count = 0;
  for (size_t i = b; i < e; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      const std::string_view p = t.text;
      if (p == "(") {
        if (!past_eq && paren == 0 && angle == 0) {
          info.is_function = true;
        }
        ++paren;
      } else if (p == ")") {
        paren = std::max(0, paren - 1);
      } else if (p == "<" && paren == 0) {
        ++angle;
      } else if (p == ">" && paren == 0) {
        angle = std::max(0, angle - 1);
      } else if ((p == "=" || p == "[") && paren == 0 && angle == 0) {
        past_eq = true;  // The declared name cannot appear past '=' or an array bound.
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) {
      continue;
    }
    const std::string_view x = t.text;
    if (IsTsaMarker(x)) {
      info.has_tsa_marker = true;
      if (x == "MIHN_GUARDED_BY" || x == "MIHN_PT_GUARDED_BY") {
        info.has_guard = true;
      }
      if (i + 1 < e && IsPunct(toks[i + 1], "(")) {
        int d = 0;  // Skip the annotation's arguments: `(mu_)` is not the member name.
        size_t j = i + 1;
        for (; j < e; ++j) {
          if (IsPunct(toks[j], "(")) {
            ++d;
          } else if (IsPunct(toks[j], ")") && --d == 0) {
            break;
          }
        }
        i = j;
      }
      continue;
    }
    if (past_eq || paren != 0) {
      continue;
    }
    if (x == "operator") {
      info.is_function = true;  // Operator declarators confuse the angle tracker.
    } else if ((x == "const" || x == "constexpr" || x == "constinit") && angle == 0) {
      info.has_const = true;
    } else if (x == "static" || x == "thread_local") {
      info.has_static = true;
    } else if (x == "Mutex" || x == "MutexLock" || x == "SyncMutex" || x == "SyncMutexLock" ||
               x == "mutex") {
      // Lock objects are the capability itself, never guarded state. "mutex"
      // covers the std::mutex a real lock (core::SyncMutex) wraps.
      info.is_mutex = true;
    } else if (x == "atomic") {
      info.is_atomic = true;
    }
    if (angle == 0) {
      info.name = std::string(x);
      ++ident_count;
    }
  }
  if (ident_count < 2) {
    info.skip = true;  // A declaration needs at least a type and a name.
  }
  return info;
}

struct ClassScope {
  bool annotated = false;  // Opted into thread-safety checking (D9).
  struct Member {
    int line;
    std::string name;
    bool guarded;
    bool exempt;
  };
  std::vector<Member> members;
};

void FinishClass(RuleContext& ctx, const ClassScope& cs, bool d9) {
  if (!d9 || !cs.annotated) {
    return;
  }
  for (const ClassScope::Member& m : cs.members) {
    if (m.guarded || m.exempt) {
      continue;
    }
    Report(ctx, static_cast<size_t>(m.line) - 1, "guarded-ok", "D9:guarded-by",
           "mutable member '" + m.name +
               "' of a thread-safety-annotated class has no MIHN_GUARDED_BY(...): every "
               "member the lock protects must say so, or be const/atomic");
  }
}

void RuleStructural(RuleContext& ctx, bool d7, bool d9) {
  const std::vector<Token> toks = StructuralTokens(ctx.ft);
  std::vector<ScopeKind> scopes{ScopeKind::kNamespace};
  std::vector<ClassScope> classes;

  auto handle_segment = [&](size_t b, size_t e) {
    const ScopeKind scope = scopes.back();
    if (scope == ScopeKind::kEnum || scope == ScopeKind::kInit) {
      return;
    }
    if (scope == ScopeKind::kFunction) {
      if (!d7) {
        return;
      }
      for (size_t i = b; i < e; ++i) {
        if (!IsIdent(toks[i], "static") && !IsIdent(toks[i], "thread_local")) {
          continue;
        }
        bool has_const = false;
        for (size_t j = i + 1; j < e; ++j) {
          if (toks[j].kind == TokKind::kIdent &&
              (toks[j].text == "const" || toks[j].text == "constexpr" ||
               toks[j].text == "constinit")) {
            has_const = true;
            break;
          }
        }
        if (!has_const) {
          Report(ctx, static_cast<size_t>(toks[i].line) - 1, "mutable-ok", "D7:static-local",
                 "non-const static local: state that survives the call breaks forked-seed "
                 "trial isolation and races the moment callers run on two threads");
        }
        break;
      }
      return;
    }
    const SegmentInfo info = AnalyzeDecl(toks, b, e);
    if (scope == ScopeKind::kClass && !classes.empty() &&
        (info.has_tsa_marker || (info.is_mutex && !info.is_function))) {
      classes.back().annotated = true;
    }
    if (info.skip || info.is_function) {
      return;
    }
    if (scope == ScopeKind::kNamespace) {
      if (d7 && !info.has_const) {
        Report(ctx, static_cast<size_t>(info.first_line) - 1, "mutable-ok",
               "D7:namespace-scope-state",
               "namespace-scope variable '" + info.name +
                   "' is mutable global state: it aliases across forked-seed trials and "
                   "future parallel runners; make it const/constexpr or pass it explicitly");
      }
      return;
    }
    // Class scope: static members are D7's problem, instance members are D9's.
    if (d7 && info.has_static && !info.has_const) {
      Report(ctx, static_cast<size_t>(info.first_line) - 1, "mutable-ok", "D7:static-member",
             "non-const static data member '" + info.name +
                 "' is shared mutable state across all instances; make it const/constexpr "
                 "or move it into the instance");
    }
    if (d9 && !classes.empty() && !info.has_static) {
      classes.back().members.push_back(
          {info.first_line, info.name, info.has_guard,
           info.has_const || info.is_mutex || info.is_atomic});
    }
  };

  size_t seg = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, "{")) {
      const ScopeKind parent = scopes.back();
      const ScopeKind kind = ClassifyBrace(toks, seg, i, parent);
      if (kind == ScopeKind::kInit &&
          (parent == ScopeKind::kNamespace || parent == ScopeKind::kClass)) {
        handle_segment(seg, i);  // `int x = {...};` — the declaration ends at '{'.
      }
      if (parent == ScopeKind::kClass && !classes.empty() && kind == ScopeKind::kFunction) {
        // Inline method definitions carry annotations before their body.
        for (size_t j = seg; j < i; ++j) {
          if (toks[j].kind == TokKind::kIdent && IsTsaMarker(toks[j].text)) {
            classes.back().annotated = true;
            break;
          }
        }
      }
      if (kind == ScopeKind::kClass) {
        classes.push_back({});
        // A capability attribute on the class head opts the class in too.
        for (size_t j = seg; j < i; ++j) {
          if (toks[j].kind == TokKind::kIdent && IsTsaMarker(toks[j].text)) {
            classes.back().annotated = true;
            break;
          }
        }
      }
      scopes.push_back(kind);
      seg = i + 1;
    } else if (IsPunct(t, "}")) {
      if (scopes.size() > 1) {
        if (scopes.back() == ScopeKind::kClass && !classes.empty()) {
          FinishClass(ctx, classes.back(), d9);
          classes.pop_back();
        }
        scopes.pop_back();
      }
      seg = i + 1;
    } else if (IsPunct(t, ";")) {
      handle_segment(seg, i);
      seg = i + 1;
    } else if (scopes.back() == ScopeKind::kClass && t.kind == TokKind::kIdent &&
               (t.text == "public" || t.text == "private" || t.text == "protected") &&
               i + 1 < toks.size() && IsPunct(toks[i + 1], ":")) {
      seg = i + 2;
      ++i;
    }
  }
}

// -- Per-file driver ----------------------------------------------------------

std::vector<Finding> CheckFileText(const std::string& rel_path, const FileText& ft,
                                   const Options& options) {
  std::vector<Finding> findings;
  RuleContext ctx{rel_path, ft, findings};
  if (RuleOn(options, "D1")) {
    RuleUnorderedContainer(ctx);
  }
  if (RuleOn(options, "D2")) {
    RuleNondetSource(ctx);
  }
  if (RuleOn(options, "D3")) {
    RuleRawUnitParam(ctx);
  }
  if (RuleOn(options, "D4")) {
    RuleFloat(ctx);
  }
  if (RuleOn(options, "D5")) {
    RuleHeaderHygiene(ctx);
  }
  if (RuleOn(options, "D8")) {
    RuleApiDrift(ctx);
    RuleOwnedClock(ctx);
  }
  const bool d7 = RuleOn(options, "D7");
  const bool d9 = RuleOn(options, "D9");
  if (d7 || d9) {
    RuleStructural(ctx, d7, d9);
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return findings;
}

}  // namespace

std::vector<Finding> CheckFile(const std::string& rel_path, const std::string& content) {
  return CheckFile(rel_path, content, Options{});
}

std::vector<Finding> CheckFile(const std::string& rel_path, const std::string& content,
                               const Options& options) {
  return CheckFileText(rel_path, Preprocess(content), options);
}

std::vector<Finding> CheckTree(const std::string& root, const std::vector<std::string>& targets) {
  return CheckTree(root, targets, Options{});
}

std::vector<Finding> CheckTree(const std::string& root, const std::vector<std::string>& targets,
                               const Options& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> rel_files;
  std::vector<Finding> findings;
  for (const std::string& target : targets) {
    const fs::path full = fs::path(root) / target;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(full, ec)) {
        if (!entry.is_regular_file()) {
          continue;
        }
        // Fixture trees are deliberately rule-violating; scanning them
        // would drown real findings.
        const std::string rel = fs::relative(entry.path(), root).generic_string();
        if (rel.find("testdata/") != std::string::npos) {
          continue;
        }
        const std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
          rel_files.push_back(fs::relative(entry.path(), root).generic_string());
        }
      }
    } else if (fs::is_regular_file(full, ec)) {
      rel_files.push_back(fs::path(target).generic_string());
    } else {
      findings.push_back({target, 0, "io", "target not found under root '" + root + "'"});
    }
  }
  std::sort(rel_files.begin(), rel_files.end());
  rel_files.erase(std::unique(rel_files.begin(), rel_files.end()), rel_files.end());

  const bool d6 = RuleOn(options, "D6") && !options.layering_file.empty();
  std::map<std::string, GraphFile> graph;
  for (const std::string& rel : rel_files) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
      findings.push_back({rel, 0, "io", "unreadable file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const FileText ft = Preprocess(buf.str());
    const std::vector<Finding> file_findings = CheckFileText(rel, ft, options);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
    if (d6) {
      graph.emplace(rel, GraphFile{ft.includes, ft.raw_lines});
    }
  }
  if (d6) {
    const Layering layering = LoadLayering(options.layering_file);
    const std::vector<Finding> d6_findings = CheckLayering(layering, graph);
    findings.insert(findings.end(), d6_findings.begin(), d6_findings.end());
  }
  return findings;
}

std::string FormatFindings(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  out << (findings.empty() ? "mihn-check: clean\n"
                           : "mihn-check: " + std::to_string(findings.size()) +
                                 " unsuppressed finding(s)\n");
  return out.str();
}

}  // namespace mihn::check
