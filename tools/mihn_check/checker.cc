#include "tools/mihn_check/checker.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace mihn::check {
namespace {

// -- Lexical preprocessing ----------------------------------------------------

// Replaces comments and string/char literal contents with spaces, preserving
// line structure, so rules never fire on prose or quoted text. Handles //,
// /* */, "..." with escapes, '...', and R"delim(...)delim".
std::string BlankCommentsAndStrings(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_end;  // ")delim\"" terminator for the active raw string.
  size_t i = 0;
  const size_t n = src.size();
  auto blank = [&](size_t pos) {
    if (out[pos] != '\n') {
      out[pos] = ' ';
    }
  };
  while (i < n) {
    const char c = src[i];
    const char next = i + 1 < n ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          blank(i);
          blank(i + 1);
          state = State::kLineComment;
          i += 2;
        } else if (c == '/' && next == '*') {
          blank(i);
          blank(i + 1);
          state = State::kBlockComment;
          i += 2;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(src[i - 1])) &&
                               src[i - 1] != '_'))) {
          size_t d = i + 2;
          while (d < n && src[d] != '(' && src[d] != '\n') {
            ++d;
          }
          if (d < n && src[d] == '(') {
            raw_end = ")" + src.substr(i + 2, d - (i + 2)) + "\"";
            for (size_t k = i; k <= d; ++k) {
              blank(k);
            }
            state = State::kRawString;
            i = d + 1;
          } else {
            ++i;  // Not a raw string after all.
          }
        } else if (c == '"') {
          blank(i);
          state = State::kString;
          ++i;
        } else if (c == '\'') {
          blank(i);
          state = State::kChar;
          ++i;
        } else {
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          blank(i);
        }
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          blank(i);
          blank(i + 1);
          state = State::kCode;
          i += 2;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          blank(i);
          state = State::kCode;
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kRawString:
        if (src.compare(i, raw_end.size(), raw_end) == 0) {
          for (size_t k = i; k < i + raw_end.size(); ++k) {
            blank(k);
          }
          i += raw_end.size();
          state = State::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// -- Suppression --------------------------------------------------------------

// True if raw line |idx| (0-based) carries "mihn-check: <tag>(" itself, or
// its immediately preceding line is a comment-only line carrying it.
bool IsSuppressed(const std::vector<std::string>& raw_lines, size_t idx, const std::string& tag) {
  const std::string marker = "mihn-check: " + tag + "(";
  if (raw_lines[idx].find(marker) != std::string::npos) {
    return true;
  }
  if (idx > 0) {
    const std::string prev = Trim(raw_lines[idx - 1]);
    if (prev.rfind("//", 0) == 0 && prev.find(marker) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// -- Per-file exemptions ------------------------------------------------------

bool IsOneOf(const std::string& rel_path, std::initializer_list<const char*> paths) {
  return std::any_of(paths.begin(), paths.end(),
                     [&](const char* p) { return rel_path == p; });
}

// The seeded randomness / virtual-clock sources: the only files allowed to
// touch nondeterminism primitives.
bool ExemptFromNondet(const std::string& rel_path) {
  return IsOneOf(rel_path,
                 {"src/sim/random.h", "src/sim/random.cc", "src/sim/time.h", "src/sim/time.cc"});
}

// The unit layer itself necessarily traffics in raw doubles.
bool ExemptFromUnitParams(const std::string& rel_path) {
  return IsOneOf(rel_path,
                 {"src/sim/units.h", "src/sim/units.cc", "src/sim/time.h", "src/sim/time.cc"});
}

bool IsHeader(const std::string& rel_path) {
  return rel_path.size() > 2 && rel_path.compare(rel_path.size() - 2, 2, ".h") == 0;
}

// -- Rules --------------------------------------------------------------------

struct RuleContext {
  const std::string& rel_path;
  const std::vector<std::string>& raw_lines;   // For suppression lookup.
  const std::vector<std::string>& code_lines;  // Comments/strings blanked.
  std::vector<Finding>& findings;
};

void Report(RuleContext& ctx, size_t idx, const std::string& tag, const std::string& rule,
            const std::string& message) {
  if (IsSuppressed(ctx.raw_lines, idx, tag)) {
    return;
  }
  ctx.findings.push_back(
      {ctx.rel_path, static_cast<int>(idx) + 1, rule,
       message + " (suppress with // mihn-check: " + tag + "(<reason>))"});
}

void RuleUnorderedContainer(RuleContext& ctx) {
  static const std::regex re(R"(std::unordered_(map|set|multimap|multiset)\b)");
  for (size_t i = 0; i < ctx.code_lines.size(); ++i) {
    if (std::regex_search(ctx.code_lines[i], re)) {
      Report(ctx, i, "unordered-ok", "D1:unordered-container",
             "unordered container in simulation/output code: hash order leaks into event "
             "order and snapshots; use std::map/std::set or sort before iterating");
    }
  }
}

void RuleNondetSource(RuleContext& ctx) {
  if (ExemptFromNondet(ctx.rel_path)) {
    return;
  }
  static const std::regex re(
      R"(std::rand\b|\bsrand\b|\brandom_device\b|\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b|std::chrono\b|\bmt19937\b|\btime\s*\(|\bclock_gettime\b|\bgettimeofday\b|\bdrand48\b)");
  for (size_t i = 0; i < ctx.code_lines.size(); ++i) {
    if (std::regex_search(ctx.code_lines[i], re)) {
      Report(ctx, i, "nondet-ok", "D2:nondet-source",
             "nondeterministic randomness/time source: draw from sim::Rng / sim::TimeNs "
             "(src/sim/random.*, src/sim/time.*) so runs stay a pure function of the seed");
    }
  }
}

// Identifier segments that imply a physical unit when typed as raw double.
bool IsUnitFlavoredName(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  static const std::initializer_list<const char*> kUnitSegments = {
      "gbps", "mbps", "kbps", "bps", "bw", "bandwidth", "latency", "ns", "bytes"};
  std::stringstream ss(name);
  std::string seg;
  while (std::getline(ss, seg, '_')) {
    if (std::any_of(kUnitSegments.begin(), kUnitSegments.end(),
                    [&](const char* u) { return seg == u; })) {
      return true;
    }
  }
  return false;
}

void RuleRawUnitParam(RuleContext& ctx) {
  if (!IsHeader(ctx.rel_path) || ExemptFromUnitParams(ctx.rel_path)) {
    return;
  }
  static const std::regex re(R"(\bdouble\s+([A-Za-z_][A-Za-z0-9_]*))");
  int paren_depth = 0;
  for (size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string& line = ctx.code_lines[i];
    // Walk the line, tracking parenthesis depth so only parameters (depth
    // >= 1) are considered — struct members and return types stay legal.
    size_t pos = 0;
    std::smatch m;
    std::string rest = line;
    size_t base = 0;
    while (std::regex_search(rest, m, re)) {
      const size_t match_at = base + static_cast<size_t>(m.position(0));
      for (; pos < match_at; ++pos) {
        if (line[pos] == '(') {
          ++paren_depth;
        } else if (line[pos] == ')') {
          paren_depth = std::max(0, paren_depth - 1);
        }
      }
      if (paren_depth >= 1 && IsUnitFlavoredName(m[1].str())) {
        Report(ctx, i, "units-ok", "D3:raw-unit-param",
               "raw double parameter '" + m[1].str() +
                   "' carries a unit in its name: pass sim::Bandwidth / sim::TimeNs so the "
                   "Gbps-vs-GBps factor of 8 cannot slip through this API");
      }
      base = match_at + static_cast<size_t>(m.length(0));
      rest = line.substr(base);
    }
    for (; pos < line.size(); ++pos) {
      if (line[pos] == '(') {
        ++paren_depth;
      } else if (line[pos] == ')') {
        paren_depth = std::max(0, paren_depth - 1);
      }
    }
  }
}

void RuleFloat(RuleContext& ctx) {
  static const std::regex float_re(R"(\bfloat\b)");
  static const std::regex eq_lit_re(
      R"((==|!=)\s*[-+]?(\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+)|(\d+\.\d*|\.\d+|\d+\.?\d*[eE][-+]?\d+)\s*(==|!=)[^=])");
  for (size_t i = 0; i < ctx.code_lines.size(); ++i) {
    if (std::regex_search(ctx.code_lines[i], float_re)) {
      Report(ctx, i, "float-ok", "D4:float-type",
             "float narrows silently and diverges across compilers; use double");
    }
    if (std::regex_search(ctx.code_lines[i], eq_lit_re)) {
      Report(ctx, i, "float-eq-ok", "D4:float-eq",
             "==/!= against a floating-point literal: compare with an explicit tolerance, "
             "or annotate why exact equality is the intended semantics");
    }
  }
}

std::string ExpectedGuard(const std::string& rel_path) {
  std::string guard = "MIHN_";
  for (const char c : rel_path) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

void RuleHeaderHygiene(RuleContext& ctx) {
  if (!IsHeader(ctx.rel_path)) {
    return;
  }
  const std::string expected = ExpectedGuard(ctx.rel_path);
  bool guard_seen = false;
  for (size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string line = Trim(ctx.code_lines[i]);
    if (!guard_seen && line.rfind("#ifndef", 0) == 0) {
      guard_seen = true;
      const std::string macro = Trim(line.substr(7));
      if (macro != expected) {
        Report(ctx, i, "guard-ok", "D5:include-guard",
               "include guard '" + macro + "' does not match path-derived '" + expected + "'");
      }
    }
    if (line.rfind("using namespace", 0) == 0 || line.find(" using namespace ") != std::string::npos) {
      Report(ctx, i, "header-ok", "D5:using-namespace",
             "'using namespace' in a header pollutes every includer; qualify names instead");
    }
  }
  if (!guard_seen) {
    Report(ctx, 0, "guard-ok", "D5:include-guard",
           "header has no #ifndef include guard (expected '" + ExpectedGuard(ctx.rel_path) + "')");
  }
}

}  // namespace

std::vector<Finding> CheckFile(const std::string& rel_path, const std::string& content) {
  const std::string blanked = BlankCommentsAndStrings(content);
  const std::vector<std::string> raw_lines = SplitLines(content);
  const std::vector<std::string> code_lines = SplitLines(blanked);
  std::vector<Finding> findings;
  RuleContext ctx{rel_path, raw_lines, code_lines, findings};
  RuleUnorderedContainer(ctx);
  RuleNondetSource(ctx);
  RuleRawUnitParam(ctx);
  RuleFloat(ctx);
  RuleHeaderHygiene(ctx);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return findings;
}

std::vector<Finding> CheckTree(const std::string& root, const std::vector<std::string>& targets) {
  namespace fs = std::filesystem;
  std::vector<std::string> rel_files;
  std::vector<Finding> findings;
  for (const std::string& target : targets) {
    const fs::path full = fs::path(root) / target;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(full, ec)) {
        if (!entry.is_regular_file()) {
          continue;
        }
        const std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
          rel_files.push_back(fs::relative(entry.path(), root).generic_string());
        }
      }
    } else if (fs::is_regular_file(full, ec)) {
      rel_files.push_back(fs::path(target).generic_string());
    } else {
      findings.push_back({target, 0, "io", "target not found under root '" + root + "'"});
    }
  }
  std::sort(rel_files.begin(), rel_files.end());
  rel_files.erase(std::unique(rel_files.begin(), rel_files.end()), rel_files.end());
  for (const std::string& rel : rel_files) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
      findings.push_back({rel, 0, "io", "unreadable file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::vector<Finding> file_findings = CheckFile(rel, buf.str());
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }
  return findings;
}

std::string FormatFindings(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  out << (findings.empty() ? "mihn-check: clean\n"
                           : "mihn-check: " + std::to_string(findings.size()) +
                                 " unsuppressed finding(s)\n");
  return out.str();
}

}  // namespace mihn::check
