// mihn-check: repo-specific static analysis for determinism and unit safety.
//
// Generic linters cannot know that this repo's simulator must be a pure
// function of (topology, workload, seed), or that a raw double crossing a
// public API is one Gbps/GBps confusion away from a factor-of-8 error in
// every experiment. mihn-check encodes those repo invariants as five
// lexical rules over the src/ tree:
//
//   D1 unordered-container   std::unordered_{map,set,...} anywhere in
//                            simulation/output code: hash order leaks into
//                            event order and snapshots. Suppress with
//                            // mihn-check: unordered-ok(<reason>)
//   D2 nondet-source         std::rand, random_device, wall clocks,
//                            std::chrono, mt19937, time(...): all
//                            randomness/time must flow through the seeded
//                            sources in src/sim/random.* and src/sim/time.*
//                            (which are exempt). Suppress: nondet-ok(...)
//   D3 raw-unit-param        double parameters named like units (gbps, bw,
//                            *_ns, bytes, latency, ...) in public headers:
//                            use sim::Bandwidth / sim::TimeNs instead.
//                            src/sim/units.* and src/sim/time.* (the unit
//                            layer itself) are exempt. Suppress:
//                            units-ok(...)
//   D4 float-type/float-eq   `float` anywhere, and ==/!= against a
//                            floating-point literal (the lexically
//                            detectable slice of float equality).
//                            Suppress: float-ok(...) / float-eq-ok(...)
//   D5 header-hygiene        include guard must be MIHN_<PATH>_ derived
//                            from the repo-relative path; no
//                            `using namespace` in headers. Suppress:
//                            guard-ok(...) / header-ok(...)
//
// A suppression annotation must sit on the offending line or on an
// immediately preceding comment-only line, and must carry a reason in
// parentheses. Comments and string literals are blanked before rule
// matching, so mentioning a banned token in prose is fine.

#ifndef MIHN_TOOLS_MIHN_CHECK_CHECKER_H_
#define MIHN_TOOLS_MIHN_CHECK_CHECKER_H_

#include <string>
#include <vector>

namespace mihn::check {

struct Finding {
  std::string file;     // Repo-relative path.
  int line = 0;         // 1-based.
  std::string rule;     // e.g. "D1:unordered-container".
  std::string message;  // What fired and how to fix or suppress it.
};

// Runs every rule against one file. |rel_path| is the path relative to the
// repo root (it drives the per-file exemptions and the expected include
// guard); |content| is the file's full text.
std::vector<Finding> CheckFile(const std::string& rel_path, const std::string& content);

// Walks |targets| (files or directories, relative to |root|), checking
// every *.h / *.cc / *.cpp in deterministic path order. Unreadable targets
// produce a synthetic finding rather than a silent skip.
std::vector<Finding> CheckTree(const std::string& root, const std::vector<std::string>& targets);

// "path:line: [rule] message" lines plus a summary line.
std::string FormatFindings(const std::vector<Finding>& findings);

}  // namespace mihn::check

#endif  // MIHN_TOOLS_MIHN_CHECK_CHECKER_H_
