// mihn-check: repo-specific static analysis for determinism, unit safety,
// module layering and concurrency readiness.
//
// Generic linters cannot know that this repo's simulator must be a pure
// function of (topology, workload, seed), or that a raw double crossing a
// public API is one Gbps/GBps confusion away from a factor-of-8 error in
// every experiment. mihn-check encodes those repo invariants as nine rule
// families over the src/ tree, all driven off one shared lexical pass per
// file (see lexer.h):
//
//   D1 unordered-container   std::unordered_{map,set,...} anywhere in
//                            simulation/output code: hash order leaks into
//                            event order and snapshots. Suppress with
//                            // mihn-check: unordered-ok(<reason>)
//   D2 nondet-source         std::rand, random_device, wall clocks,
//                            std::chrono, mt19937, time(...): all
//                            randomness/time must flow through the seeded
//                            sources in src/sim/random.* and src/sim/time.*
//                            (which are exempt). Suppress: nondet-ok(...)
//   D3 raw-unit-param        double parameters named like units (gbps, bw,
//                            *_ns, bytes, latency, ...) in public headers:
//                            use sim::Bandwidth / sim::TimeNs instead.
//                            src/sim/units.* and src/sim/time.* (the unit
//                            layer itself) are exempt. Suppress:
//                            units-ok(...)
//   D4 float-type/float-eq   `float` anywhere, and ==/!= against a
//                            floating-point literal (the lexically
//                            detectable slice of float equality).
//                            Suppress: float-ok(...) / float-eq-ok(...)
//   D5 header-hygiene        include guard must be MIHN_<PATH>_ derived
//                            from the repo-relative path; no
//                            `using namespace` in headers. Suppress:
//                            guard-ok(...) / header-ok(...)
//   D6 layering              the src/ include DAG must respect the module
//                            order declared in tools/mihn_check/layering.txt
//                            (lower layers first): no upward includes, no
//                            undeclared modules, no file-level include
//                            cycles. Tree-level rule — it runs from
//                            CheckTree, not CheckFile. Suppress:
//                            layering-ok(...)
//   D7 mutable-state         non-const namespace-scope variables, non-const
//                            static locals, and non-const static data
//                            members: hidden mutable state breaks
//                            forked-seed trial isolation and will be shared
//                            (unsynchronized) the day the ROADMAP's
//                            parallel runners land. Suppress: mutable-ok(...)
//   D8 api-drift             deprecated symbols (SolveMaxMin) and headers
//                            (src/diagnose/tools.h) are banned everywhere —
//                            both migrations are finished, so the allowlists
//                            are empty and the bans only stop revivals.
//                            Suppress: drift-ok(...)
//      owned-clock           HostNetwork must be constructed through the
//                            clock-injection constructors (first argument a
//                            caller-owned sim::Simulation — lexically, the
//                            first constructor argument must mention an
//                            identifier containing "sim"). The owning
//                            wrappers that allocate a private clock are for
//                            downstream users only; sharing one clock is the
//                            fleet seam. Exempt: the wrapper definition
//                            sites (src/host/host_network.{h,cc}) and the
//                            owning-vs-injected equivalence test
//                            (tests/host/host_network_test.cc). Suppress:
//                            clock-ok(...)
//   D9 guarded-by            a class that opts into thread-safety
//                            annotations (any MIHN_GUARDED_BY/MIHN_REQUIRES
//                            marker, or a core::Mutex / core::SyncMutex
//                            member) must annotate every mutable data member
//                            with MIHN_GUARDED_BY(...). const, static,
//                            std::atomic and lock members (Mutex, SyncMutex,
//                            std::mutex — the capability itself) are exempt.
//                            Suppress: guarded-ok(...)
//
// A suppression annotation must sit on the offending line or on an
// immediately preceding comment-only line, and must carry a reason in
// parentheses. Comments and string literals are blanked before rule
// matching, so mentioning a banned token in prose is fine.

#ifndef MIHN_TOOLS_MIHN_CHECK_CHECKER_H_
#define MIHN_TOOLS_MIHN_CHECK_CHECKER_H_

#include <string>
#include <vector>

namespace mihn::check {

struct Finding {
  std::string file;     // Repo-relative path.
  int line = 0;         // 1-based.
  std::string rule;     // e.g. "D1:unordered-container".
  std::string message;  // What fired and how to fix or suppress it.
};

struct Options {
  // Enabled rule families, by prefix: {"D1", ..., "D9"}. Empty means all.
  std::vector<std::string> rules;
  // Path to the layering manifest for D6. Empty skips D6 (the rule is
  // tree-level: it needs the whole include graph, so only CheckTree runs
  // it). An unreadable or malformed manifest is itself a finding.
  std::string layering_file;
};

// Runs every per-file rule against one file. |rel_path| is the path
// relative to the repo root (it drives the per-file exemptions and the
// expected include guard); |content| is the file's full text.
std::vector<Finding> CheckFile(const std::string& rel_path, const std::string& content);
std::vector<Finding> CheckFile(const std::string& rel_path, const std::string& content,
                               const Options& options);

// Walks |targets| (files or directories, relative to |root|), checking
// every *.h / *.cc / *.cpp in deterministic path order, then runs the D6
// layering/cycle checks over the collected include graph when
// |options.layering_file| is set. Unreadable targets produce a synthetic
// finding rather than a silent skip.
std::vector<Finding> CheckTree(const std::string& root, const std::vector<std::string>& targets);
std::vector<Finding> CheckTree(const std::string& root, const std::vector<std::string>& targets,
                               const Options& options);

// "path:line: [rule] message" lines plus a summary line.
std::string FormatFindings(const std::vector<Finding>& findings);

}  // namespace mihn::check

#endif  // MIHN_TOOLS_MIHN_CHECK_CHECKER_H_
