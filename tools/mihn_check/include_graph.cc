#include "tools/mihn_check/include_graph.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

namespace mihn::check {
namespace {

constexpr char kTag[] = "layering-ok";

void Report(const std::map<std::string, GraphFile>& files, const std::string& rel_path,
            int line, const std::string& rule, const std::string& message,
            std::vector<Finding>& findings) {
  const auto it = files.find(rel_path);
  if (it != files.end() && line >= 1 &&
      IsSuppressed(it->second.raw_lines, static_cast<size_t>(line) - 1, kTag)) {
    return;
  }
  findings.push_back({rel_path, line, rule,
                      message + " (suppress with // mihn-check: " + std::string(kTag) +
                          "(<reason>))"});
}

// Depth-first cycle search over the quoted-include graph restricted to the
// checked file set. Reports each back edge once, at the include line that
// closes the cycle, with the full path spelled out.
struct CycleFinder {
  const std::map<std::string, GraphFile>& files;
  std::vector<Finding>& findings;
  std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done.
  std::vector<std::string> stack;

  void Visit(const std::string& file) {
    color[file] = 1;
    stack.push_back(file);
    const GraphFile& gf = files.at(file);
    for (const IncludeRef& inc : gf.includes) {
      if (!inc.quoted || !files.count(inc.path)) {
        continue;
      }
      const int c = color[inc.path];
      if (c == 0) {
        Visit(inc.path);
      } else if (c == 1) {
        std::string loop;
        const auto at = std::find(stack.begin(), stack.end(), inc.path);
        for (auto it = at; it != stack.end(); ++it) {
          loop += *it + " -> ";
        }
        loop += inc.path;
        Report(files, file, inc.line, "D6:include-cycle",
               "include cycle: " + loop +
                   "; break the cycle (extract the shared piece into a lower layer)",
               findings);
      }
    }
    stack.pop_back();
    color[file] = 2;
  }
};

}  // namespace

Layering ParseLayering(const std::string& content) {
  Layering layering;
  std::istringstream in(content);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    if (line.find_first_of(" \t/") != std::string::npos) {
      layering.errors.push_back("layering manifest line " + std::to_string(lineno) +
                                ": expected a bare module name, got '" + line + "'");
      continue;
    }
    if (layering.rank.count(line)) {
      layering.errors.push_back("layering manifest line " + std::to_string(lineno) +
                                ": duplicate module '" + line + "'");
      continue;
    }
    layering.rank[line] = static_cast<int>(layering.modules.size());
    layering.modules.push_back(line);
  }
  return layering;
}

Layering LoadLayering(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Layering layering;
    layering.source = path;
    layering.errors.push_back("layering manifest unreadable: '" + path + "'");
    return layering;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Layering layering = ParseLayering(buf.str());
  layering.source = path;
  return layering;
}

std::string ModuleOf(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) != 0) {
    return "";
  }
  const size_t slash = rel_path.find('/', 4);
  if (slash == std::string::npos) {
    return "";  // A file directly under src/ belongs to no module.
  }
  return rel_path.substr(4, slash - 4);
}

std::vector<Finding> CheckLayering(const Layering& layering,
                                   const std::map<std::string, GraphFile>& files) {
  std::vector<Finding> findings;
  if (!layering.ok()) {
    if (layering.errors.empty()) {
      findings.push_back({layering.source, 0, "D6:layering", "layering manifest is empty"});
    }
    for (const std::string& err : layering.errors) {
      findings.push_back({layering.source, 0, "D6:layering", err});
    }
    return findings;
  }

  // Rank check: every cross-module quoted include inside src/ must point
  // strictly downward.
  std::set<std::string> unknown_reported;
  for (const auto& [rel_path, gf] : files) {
    const std::string from_module = ModuleOf(rel_path);
    if (from_module.empty()) {
      continue;  // Layering only binds src/<module>/ files.
    }
    const auto from_rank = layering.rank.find(from_module);
    if (from_rank == layering.rank.end()) {
      if (unknown_reported.insert(from_module).second) {
        Report(files, rel_path, 1, "D6:layering",
               "module 'src/" + from_module +
                   "' is not declared in tools/mihn_check/layering.txt; add it at the "
                   "correct layer",
               findings);
      }
      continue;
    }
    for (const IncludeRef& inc : gf.includes) {
      if (!inc.quoted) {
        continue;
      }
      const std::string to_module = ModuleOf(inc.path);
      if (to_module.empty() || to_module == from_module) {
        continue;
      }
      const auto to_rank = layering.rank.find(to_module);
      if (to_rank == layering.rank.end()) {
        Report(files, rel_path, inc.line, "D6:layering",
               "include of 'src/" + to_module +
                   "/...' which is not declared in tools/mihn_check/layering.txt",
               findings);
        continue;
      }
      if (to_rank->second >= from_rank->second) {
        Report(files, rel_path, inc.line, "D6:layering",
               "upward include: src/" + from_module + " (layer " +
                   std::to_string(from_rank->second) + ") must not include src/" + to_module +
                   " (layer " + std::to_string(to_rank->second) +
                   "); only same-module or lower-layer includes are allowed",
               findings);
      }
    }
  }

  // File-level cycle detection (covers same-module cycles the rank check
  // cannot see). std::map iteration order makes the DFS deterministic.
  CycleFinder finder{files, findings, {}, {}};
  for (const auto& [rel_path, gf] : files) {
    (void)gf;
    if (ModuleOf(rel_path).empty()) {
      continue;
    }
    if (finder.color[rel_path] == 0) {
      finder.Visit(rel_path);
    }
  }
  return findings;
}

}  // namespace mihn::check
