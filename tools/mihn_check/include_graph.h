// D6 layering: the repo include DAG checked against a declared module order.
//
// The manifest (tools/mihn_check/layering.txt) lists the src/ modules one
// per line, lowest layer first. A file in src/<M>/ may #include
// src/<N>/... only when N is the same module or a strictly lower layer —
// so per-host state cannot alias through back-door includes, and the
// module graph stays a DAG by construction. On top of the rank check, a
// file-level DFS rejects include cycles outright (same-module cycles
// compile fine behind guards but are exactly the tangles that make later
// parallel ownership impossible to reason about).
//
// Only src/ is subject to layering: tests/, bench/, examples/ and tools/
// are consumers above the whole stack.

#ifndef MIHN_TOOLS_MIHN_CHECK_INCLUDE_GRAPH_H_
#define MIHN_TOOLS_MIHN_CHECK_INCLUDE_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "tools/mihn_check/checker.h"
#include "tools/mihn_check/lexer.h"

namespace mihn::check {

// The parsed layering manifest. '#' starts a comment; blank lines are
// ignored; every other line is one module name, lower layers first.
struct Layering {
  std::vector<std::string> modules;  // Bottom-up declaration order.
  std::map<std::string, int> rank;   // module -> position in |modules|.
  std::vector<std::string> errors;   // Parse problems; non-empty => unusable.
  std::string source = "layering manifest";  // Where it was loaded from.

  bool ok() const { return errors.empty() && !modules.empty(); }
};

Layering ParseLayering(const std::string& content);

// Reads and parses |path|; an unreadable file becomes a Layering error.
Layering LoadLayering(const std::string& path);

// Module of a repo-relative path: "src/<module>/..." -> "<module>",
// "" for anything not under src/.
std::string ModuleOf(const std::string& rel_path);

// What CheckLayering needs to retain per file: its include list plus the
// raw lines (suppression annotations live in comments, which the blanked
// view erased).
struct GraphFile {
  std::vector<IncludeRef> includes;
  std::vector<std::string> raw_lines;
};

// Checks every src/ file in |files| (keyed by repo-relative path) against
// the manifest, and runs file-level cycle detection over the quoted-include
// graph restricted to |files|. Deterministic: files are visited in path
// order, findings are emitted in discovery order.
std::vector<Finding> CheckLayering(const Layering& layering,
                                   const std::map<std::string, GraphFile>& files);

}  // namespace mihn::check

#endif  // MIHN_TOOLS_MIHN_CHECK_INCLUDE_GRAPH_H_
