#include "tools/mihn_check/lexer.h"

#include <cctype>

namespace mihn::check {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

// Extracts the include target from the RAW line (the blanked view wipes
// string contents, so the path must come from the original bytes).
void ParseInclude(const std::string& raw_line, int line, std::vector<IncludeRef>& out) {
  size_t i = raw_line.find("include");
  if (i == std::string::npos) {
    return;
  }
  i += 7;
  while (i < raw_line.size() && std::isspace(static_cast<unsigned char>(raw_line[i]))) {
    ++i;
  }
  if (i >= raw_line.size()) {
    return;
  }
  const char open = raw_line[i];
  const char close = open == '"' ? '"' : open == '<' ? '>' : '\0';
  if (close == '\0') {
    return;
  }
  const size_t end = raw_line.find(close, i + 1);
  if (end == std::string::npos) {
    return;
  }
  out.push_back({raw_line.substr(i + 1, end - i - 1), line, open == '"'});
}

}  // namespace

std::string BlankCommentsAndStrings(const std::string& src) {
  std::string out = src;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_end;  // ")delim\"" terminator for the active raw string.
  size_t i = 0;
  const size_t n = src.size();
  auto blank = [&](size_t pos) {
    if (out[pos] != '\n') {
      out[pos] = ' ';
    }
  };
  while (i < n) {
    const char c = src[i];
    const char next = i + 1 < n ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          blank(i);
          blank(i + 1);
          state = State::kLineComment;
          i += 2;
        } else if (c == '/' && next == '*') {
          blank(i);
          blank(i + 1);
          state = State::kBlockComment;
          i += 2;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(src[i - 1])) &&
                               src[i - 1] != '_'))) {
          size_t d = i + 2;
          while (d < n && src[d] != '(' && src[d] != '\n') {
            ++d;
          }
          if (d < n && src[d] == '(') {
            raw_end = ")" + src.substr(i + 2, d - (i + 2)) + "\"";
            for (size_t k = i; k <= d; ++k) {
              blank(k);
            }
            state = State::kRawString;
            i = d + 1;
          } else {
            ++i;  // Not a raw string after all.
          }
        } else if (c == '"') {
          blank(i);
          state = State::kString;
          ++i;
        } else if (c == '\'') {
          blank(i);
          state = State::kChar;
          ++i;
        } else {
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          blank(i);
        }
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          blank(i);
          blank(i + 1);
          state = State::kCode;
          i += 2;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          blank(i);
          state = State::kCode;
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kRawString:
        if (src.compare(i, raw_end.size(), raw_end) == 0) {
          for (size_t k = i; k < i + raw_end.size(); ++k) {
            blank(k);
          }
          i += raw_end.size();
          state = State::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
    }
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool IsSuppressed(const std::vector<std::string>& raw_lines, size_t idx, const std::string& tag) {
  const std::string marker = "mihn-check: " + tag + "(";
  if (idx < raw_lines.size() && raw_lines[idx].find(marker) != std::string::npos) {
    return true;
  }
  if (idx > 0 && idx - 1 < raw_lines.size()) {
    const std::string prev = Trim(raw_lines[idx - 1]);
    if (prev.rfind("//", 0) == 0 && prev.find(marker) != std::string::npos) {
      return true;
    }
  }
  return false;
}

bool IsFloatLiteral(std::string_view number) {
  if (number.size() >= 2 && number[0] == '0' && (number[1] == 'x' || number[1] == 'X')) {
    return false;  // Hex (p-exponents are out of scope for this codebase).
  }
  for (size_t i = 0; i < number.size(); ++i) {
    if (number[i] == '.') {
      return true;
    }
    if ((number[i] == 'e' || number[i] == 'E') && i > 0 &&
        std::isdigit(static_cast<unsigned char>(number[i - 1]))) {
      size_t j = i + 1;
      if (j < number.size() && (number[j] == '+' || number[j] == '-')) {
        ++j;
      }
      if (j < number.size() && std::isdigit(static_cast<unsigned char>(number[j]))) {
        return true;
      }
    }
  }
  return false;
}

FileText Preprocess(const std::string& content) {
  FileText ft;
  ft.raw = content;
  ft.blanked = BlankCommentsAndStrings(content);
  ft.raw_lines = SplitLines(ft.raw);
  ft.code_lines = SplitLines(ft.blanked);

  // Includes: a directive line starts with '#' in the *blanked* view (so a
  // "#include" inside a comment or string never counts), but the path is
  // read from the raw line (blanking wiped the quoted text).
  for (size_t i = 0; i < ft.code_lines.size(); ++i) {
    const std::string& code = ft.code_lines[i];
    const size_t first = code.find_first_not_of(" \t\r");
    if (first == std::string::npos || code[first] != '#') {
      continue;
    }
    const size_t dir = code.find_first_not_of(" \t\r", first + 1);
    if (dir != std::string::npos && code.compare(dir, 7, "include") == 0) {
      ParseInclude(ft.raw_lines[i], static_cast<int>(i) + 1, ft.includes);
    }
  }

  // Single token pass over the blanked text.
  const std::string& s = ft.blanked;
  const size_t n = s.size();
  int line = 1;
  size_t i = 0;
  ft.tokens.reserve(n / 6);
  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(s[j])) {
        ++j;
      }
      ft.tokens.push_back({TokKind::kIdent, std::string_view(s).substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
      // pp-number: digits, idents chars, '.', and sign after e/E.
      size_t j = i + 1;
      while (j < n) {
        const char d = s[j];
        if (IsIdentChar(d) || d == '.') {
          ++j;
        } else if ((d == '+' || d == '-') && (s[j - 1] == 'e' || s[j - 1] == 'E')) {
          ++j;
        } else {
          break;
        }
      }
      ft.tokens.push_back({TokKind::kNumber, std::string_view(s).substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation; fuse the three two-char operators the rules match on.
    size_t len = 1;
    if (i + 1 < n) {
      const char d = s[i + 1];
      if ((c == ':' && d == ':') || ((c == '=' || c == '!') && d == '=')) {
        len = 2;
      }
    }
    ft.tokens.push_back({TokKind::kPunct, std::string_view(s).substr(i, len), line});
    i += len;
  }
  return ft;
}

}  // namespace mihn::check
