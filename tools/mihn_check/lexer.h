// Lexical front end shared by every mihn-check rule.
//
// mihn-check v1 ran one regex pass per rule per line; v2 preprocesses each
// file exactly once into a FileText — comments/strings blanked, lines
// split, a single token stream, and the #include list — and every rule
// family (D1–D9) consumes that shared view. This is what keeps the CI gate
// sub-second over the whole tree: the cost per file is one scan plus a few
// linear token walks, regardless of how many rules are enabled.
//
// The tokenizer is deliberately a *lexer*, not a parser: it understands
// identifiers, pp-numbers and punctuation (with the three multi-char
// operators the rules care about: ::, ==, !=), and it tags every token with
// its 1-based line so findings stay clickable. Semantic structure — scopes,
// declarations, class bodies — is recovered by the rules that need it (see
// checker.cc) from this stream.

#ifndef MIHN_TOOLS_MIHN_CHECK_LEXER_H_
#define MIHN_TOOLS_MIHN_CHECK_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace mihn::check {

enum class TokKind {
  kIdent,   // Identifiers and keywords: [A-Za-z_][A-Za-z0-9_]*
  kNumber,  // pp-numbers: 0x1f, 1.0, 1e9, 3.5f, ...
  kPunct,   // Everything else; "::", "==", "!=" are single tokens.
};

struct Token {
  TokKind kind;
  std::string_view text;  // View into FileText::blanked.
  int line = 0;           // 1-based.
};

// One #include directive. Only the quoted repo-relative form matters to the
// rules; system includes are recorded with quoted=false for completeness.
struct IncludeRef {
  std::string path;
  int line = 0;  // 1-based.
  bool quoted = false;
};

// The preprocessed view of one file: computed once, shared by all rules.
struct FileText {
  std::string raw;                      // Original bytes.
  std::string blanked;                  // Comments/string contents -> spaces.
  std::vector<std::string> raw_lines;   // Suppression annotations live here.
  std::vector<std::string> code_lines;  // Split view of |blanked|.
  std::vector<Token> tokens;            // Single shared token stream.
  std::vector<IncludeRef> includes;     // #include directives, in order.
};

// Replaces comments and string/char literal contents with spaces,
// preserving line structure, so rules never fire on prose or quoted text.
// Handles //, /* */, "..." with escapes, '...', and R"delim(...)delim".
std::string BlankCommentsAndStrings(const std::string& src);

// Runs the full front end over |content|.
FileText Preprocess(const std::string& content);

// True if the pp-number token text is a floating-point literal (has a '.'
// or a decimal exponent). Hex literals are never float here.
bool IsFloatLiteral(std::string_view number);

// Strips leading/trailing spaces, tabs and '\r'.
std::string Trim(const std::string& s);

// True if raw line |idx| (0-based) carries "mihn-check: <tag>(" itself, or
// its immediately preceding line is a comment-only line carrying it. Shared
// by every rule family, including the graph checks in include_graph.cc.
bool IsSuppressed(const std::vector<std::string>& raw_lines, size_t idx, const std::string& tag);

}  // namespace mihn::check

#endif  // MIHN_TOOLS_MIHN_CHECK_LEXER_H_
