// CLI driver for mihn-check (see checker.h for the rule catalogue).
//
// Usage: mihn_check [--root <repo-root>] [--rules=D1,D6,...]
//                   [--layering=<manifest>|none] [target ...]
//
// Targets are files or directories relative to the root (default: src).
// The D6 layering manifest defaults to <root>/tools/mihn_check/layering.txt
// when it exists, so every invocation gates the include DAG without extra
// flags; pass --layering=none to opt out. Prints findings as
// "path:line: [rule] message" and exits nonzero when any unsuppressed
// finding remains — ctest and the static-analysis CI job both gate on that
// exit code.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/mihn_check/checker.h"

namespace {

// Accepts both "--flag value" and "--flag=value"; returns true when |arg|
// matched |flag| and *value was filled (possibly consuming argv[i+1]).
bool FlagValue(const char* flag, int argc, char** argv, int* i, std::string* value) {
  const size_t flag_len = std::strlen(flag);
  if (std::strncmp(argv[*i], flag, flag_len) != 0) {
    return false;
  }
  const char* rest = argv[*i] + flag_len;
  if (rest[0] == '=') {
    *value = rest + 1;
    return true;
  }
  if (rest[0] == '\0' && *i + 1 < argc) {
    *value = argv[++*i];
    return true;
  }
  return false;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
      }
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string rules;
  std::string layering;
  bool layering_set = false;
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (FlagValue("--root", argc, argv, &i, &value)) {
      root = value;
    } else if (FlagValue("--rules", argc, argv, &i, &value)) {
      rules = value;
    } else if (FlagValue("--layering", argc, argv, &i, &value)) {
      layering = value;
      layering_set = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: mihn_check [--root <repo-root>] [--rules=D1,D6,...]\n"
          "                  [--layering=<manifest>|none] [target ...]\n");
      return 0;
    } else {
      targets.emplace_back(argv[i]);
    }
  }
  if (targets.empty()) {
    targets.emplace_back("src");
  }

  mihn::check::Options options;
  options.rules = SplitCommas(rules);
  if (!layering_set) {
    // Default to the checked-in manifest so D6 gates every invocation.
    const std::filesystem::path manifest =
        std::filesystem::path(root) / "tools" / "mihn_check" / "layering.txt";
    std::error_code ec;
    if (std::filesystem::is_regular_file(manifest, ec)) {
      options.layering_file = manifest.string();
    }
  } else if (layering != "none" && !layering.empty()) {
    const std::filesystem::path p(layering);
    options.layering_file =
        p.is_absolute() ? p.string() : (std::filesystem::path(root) / p).string();
  }

  const std::vector<mihn::check::Finding> findings =
      mihn::check::CheckTree(root, targets, options);
  std::fputs(mihn::check::FormatFindings(findings).c_str(), stdout);
  return findings.empty() ? 0 : 1;
}
