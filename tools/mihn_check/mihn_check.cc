// CLI driver for mihn-check (see checker.h for the rule catalogue).
//
// Usage: mihn_check --root <repo-root> [target ...]
//
// Targets are files or directories relative to the root (default: src).
// Prints findings as "path:line: [rule] message" and exits nonzero when any
// unsuppressed finding remains — ctest and the static-analysis CI job both
// gate on that exit code.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tools/mihn_check/checker.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: mihn_check --root <repo-root> [target ...]\n");
      return 0;
    } else {
      targets.emplace_back(argv[i]);
    }
  }
  if (targets.empty()) {
    targets.emplace_back("src");
  }
  const std::vector<mihn::check::Finding> findings = mihn::check::CheckTree(root, targets);
  std::fputs(mihn::check::FormatFindings(findings).c_str(), stdout);
  return findings.empty() ? 0 : 1;
}
