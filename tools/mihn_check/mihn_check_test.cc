// Self-test for mihn-check: every rule (D1-D5) must both fire on its bad
// fixture and stay silent on its good fixture (which exercises the
// suppression annotation). A checker that silently stops firing is worse
// than no checker — CI would keep reporting a clean tree forever.

#include "tools/mihn_check/checker.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace mihn::check {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(MIHN_CHECK_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Findings for a fixture, checked under its own filename as the
// repo-relative path (so D5 expects a MIHN_<FILENAME>_ guard).
std::vector<Finding> Check(const std::string& name) {
  return CheckFile(name, ReadFixture(name));
}

size_t CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<size_t>(std::count_if(
      findings.begin(), findings.end(), [&](const Finding& f) { return f.rule == rule; }));
}

TEST(MihnCheckTest, D1FiresOnUnorderedContainer) {
  const auto findings = Check("d1_unordered_bad.cc");
  EXPECT_EQ(CountRule(findings, "D1:unordered-container"), 1u);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(MihnCheckTest, D1HonorsSuppressionAndIgnoresComments) {
  EXPECT_TRUE(Check("d1_unordered_good.cc").empty());
}

TEST(MihnCheckTest, D2FiresOnNondeterminismSources) {
  const auto findings = Check("d2_nondet_bad.cc");
  EXPECT_EQ(CountRule(findings, "D2:nondet-source"), 2u);  // std::rand + system_clock lines.
  EXPECT_EQ(findings.size(), 2u);
}

TEST(MihnCheckTest, D2HonorsSuppression) {
  EXPECT_TRUE(Check("d2_nondet_good.cc").empty());
}

TEST(MihnCheckTest, D2ExemptsTheSeededSources) {
  // The same banned content is legal inside the deterministic time/random
  // implementation files themselves.
  const std::string content = ReadFixture("d2_nondet_bad.cc");
  EXPECT_TRUE(CheckFile("src/sim/random.cc", content).empty());
  EXPECT_TRUE(CheckFile("src/sim/time.cc", content).empty());
  EXPECT_FALSE(CheckFile("src/sim/simulation.cc", content).empty());
}

TEST(MihnCheckTest, D3FiresOnRawUnitParamsInHeaders) {
  const auto findings = Check("d3_units_bad.h");
  EXPECT_EQ(CountRule(findings, "D3:raw-unit-param"), 3u);  // gbps, delay_ns, bytes.
  EXPECT_EQ(findings.size(), 3u);
}

TEST(MihnCheckTest, D3IgnoresMembersAndHonorsSuppression) {
  EXPECT_TRUE(Check("d3_units_good.h").empty());
}

TEST(MihnCheckTest, D3OnlyAppliesToHeaders) {
  // The same text as a .cc file is out of scope: implementation internals
  // may stage raw doubles; the rule polices API surfaces.
  EXPECT_TRUE(CheckFile("d3_units_bad.cc", ReadFixture("d3_units_bad.h")).empty());
}

TEST(MihnCheckTest, D4FiresOnFloatAndFloatEquality) {
  const auto findings = Check("d4_float_bad.cc");
  EXPECT_EQ(CountRule(findings, "D4:float-type"), 2u);  // Declaration + static_cast.
  EXPECT_EQ(CountRule(findings, "D4:float-eq"), 2u);    // == 0.5 and 1.0 !=.
  EXPECT_EQ(findings.size(), 4u);
}

TEST(MihnCheckTest, D4HonorsSuppressionsAndAllowsIntEquality) {
  EXPECT_TRUE(Check("d4_float_good.cc").empty());
}

TEST(MihnCheckTest, D5FiresOnBadGuardAndUsingNamespace) {
  const auto findings = Check("d5_header_bad.h");
  EXPECT_EQ(CountRule(findings, "D5:include-guard"), 1u);
  EXPECT_EQ(CountRule(findings, "D5:using-namespace"), 1u);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(MihnCheckTest, D5AcceptsPathDerivedGuard) {
  EXPECT_TRUE(Check("d5_header_good.h").empty());
}

TEST(MihnCheckTest, D5FlagsMissingGuard) {
  const auto findings = CheckFile("nak.h", "namespace fixture {}\n");
  EXPECT_EQ(CountRule(findings, "D5:include-guard"), 1u);
}

TEST(MihnCheckTest, SuppressionRequiresAReason) {
  // A bare tag without the "(<reason>" opening does not suppress.
  const auto findings =
      CheckFile("bare.cc", "std::unordered_map<int, int> m;  // mihn-check: unordered-ok\n");
  EXPECT_EQ(CountRule(findings, "D1:unordered-container"), 1u);
}

TEST(MihnCheckTest, FindingsCarryFileLineAndSuppressionHint) {
  const auto findings = Check("d1_unordered_bad.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "d1_unordered_bad.cc");
  EXPECT_GT(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("unordered-ok"), std::string::npos);
}

TEST(MihnCheckTest, FormatFindingsSummarizes) {
  EXPECT_NE(FormatFindings({}).find("clean"), std::string::npos);
  const auto findings = Check("d5_header_bad.h");
  const std::string report = FormatFindings(findings);
  EXPECT_NE(report.find("d5_header_bad.h:"), std::string::npos);
  EXPECT_NE(report.find("2 unsuppressed"), std::string::npos);
}

}  // namespace
}  // namespace mihn::check
