// Self-test for mihn-check: every rule (D1-D9) must both fire on its bad
// fixture and stay silent on its good fixture (which exercises the
// suppression annotation). A checker that silently stops firing is worse
// than no checker — CI would keep reporting a clean tree forever.

#include "tools/mihn_check/checker.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/mihn_check/include_graph.h"

namespace mihn::check {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(MIHN_CHECK_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Findings for a fixture, checked under its own filename as the
// repo-relative path (so D5 expects a MIHN_<FILENAME>_ guard).
std::vector<Finding> Check(const std::string& name) {
  return CheckFile(name, ReadFixture(name));
}

size_t CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<size_t>(std::count_if(
      findings.begin(), findings.end(), [&](const Finding& f) { return f.rule == rule; }));
}

TEST(MihnCheckTest, D1FiresOnUnorderedContainer) {
  const auto findings = Check("d1_unordered_bad.cc");
  EXPECT_EQ(CountRule(findings, "D1:unordered-container"), 1u);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(MihnCheckTest, D1HonorsSuppressionAndIgnoresComments) {
  EXPECT_TRUE(Check("d1_unordered_good.cc").empty());
}

TEST(MihnCheckTest, D2FiresOnNondeterminismSources) {
  const auto findings = Check("d2_nondet_bad.cc");
  EXPECT_EQ(CountRule(findings, "D2:nondet-source"), 2u);  // std::rand + system_clock lines.
  EXPECT_EQ(findings.size(), 2u);
}

TEST(MihnCheckTest, D2HonorsSuppression) {
  EXPECT_TRUE(Check("d2_nondet_good.cc").empty());
}

TEST(MihnCheckTest, D2ExemptsTheSeededSources) {
  // The same banned content is legal inside the deterministic time/random
  // implementation files themselves.
  const std::string content = ReadFixture("d2_nondet_bad.cc");
  EXPECT_TRUE(CheckFile("src/sim/random.cc", content).empty());
  EXPECT_TRUE(CheckFile("src/sim/time.cc", content).empty());
  EXPECT_FALSE(CheckFile("src/sim/simulation.cc", content).empty());
}

TEST(MihnCheckTest, D3FiresOnRawUnitParamsInHeaders) {
  const auto findings = Check("d3_units_bad.h");
  EXPECT_EQ(CountRule(findings, "D3:raw-unit-param"), 3u);  // gbps, delay_ns, bytes.
  EXPECT_EQ(findings.size(), 3u);
}

TEST(MihnCheckTest, D3IgnoresMembersAndHonorsSuppression) {
  EXPECT_TRUE(Check("d3_units_good.h").empty());
}

TEST(MihnCheckTest, D3OnlyAppliesToHeaders) {
  // The same text as a .cc file is out of scope: implementation internals
  // may stage raw doubles; the rule polices API surfaces.
  EXPECT_TRUE(CheckFile("d3_units_bad.cc", ReadFixture("d3_units_bad.h")).empty());
}

TEST(MihnCheckTest, D4FiresOnFloatAndFloatEquality) {
  const auto findings = Check("d4_float_bad.cc");
  EXPECT_EQ(CountRule(findings, "D4:float-type"), 2u);  // Declaration + static_cast.
  EXPECT_EQ(CountRule(findings, "D4:float-eq"), 2u);    // == 0.5 and 1.0 !=.
  EXPECT_EQ(findings.size(), 4u);
}

TEST(MihnCheckTest, D4HonorsSuppressionsAndAllowsIntEquality) {
  EXPECT_TRUE(Check("d4_float_good.cc").empty());
}

TEST(MihnCheckTest, D5FiresOnBadGuardAndUsingNamespace) {
  const auto findings = Check("d5_header_bad.h");
  EXPECT_EQ(CountRule(findings, "D5:include-guard"), 1u);
  EXPECT_EQ(CountRule(findings, "D5:using-namespace"), 1u);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(MihnCheckTest, D5AcceptsPathDerivedGuard) {
  EXPECT_TRUE(Check("d5_header_good.h").empty());
}

TEST(MihnCheckTest, D5FlagsMissingGuard) {
  const auto findings = CheckFile("nak.h", "namespace fixture {}\n");
  EXPECT_EQ(CountRule(findings, "D5:include-guard"), 1u);
}

TEST(MihnCheckTest, SuppressionRequiresAReason) {
  // A bare tag without the "(<reason>" opening does not suppress.
  const auto findings =
      CheckFile("bare.cc", "std::unordered_map<int, int> m;  // mihn-check: unordered-ok\n");
  EXPECT_EQ(CountRule(findings, "D1:unordered-container"), 1u);
}

TEST(MihnCheckTest, FindingsCarryFileLineAndSuppressionHint) {
  const auto findings = Check("d1_unordered_bad.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "d1_unordered_bad.cc");
  EXPECT_GT(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("unordered-ok"), std::string::npos);
}

TEST(MihnCheckTest, D7FiresOnEveryMutableStatePosition) {
  const auto findings = Check("d7_state_bad.cc");
  EXPECT_EQ(CountRule(findings, "D7:namespace-scope-state"), 2u);
  EXPECT_EQ(CountRule(findings, "D7:static-local"), 1u);
  EXPECT_EQ(CountRule(findings, "D7:static-member"), 1u);
  EXPECT_EQ(findings.size(), 4u);
}

TEST(MihnCheckTest, D7AllowsConstantsLocalsAndSuppressions) {
  EXPECT_TRUE(Check("d7_state_good.cc").empty());
}

TEST(MihnCheckTest, D8FiresOnBannedSymbolAndInclude) {
  const auto findings = Check("d8_drift_bad.cc");
  EXPECT_EQ(CountRule(findings, "D8:api-drift"), 2u);
  EXPECT_EQ(findings.size(), 2u);
}

TEST(MihnCheckTest, D8AllowsReferenceSolverAndSuppression) {
  EXPECT_TRUE(Check("d8_drift_good.cc").empty());
}

TEST(MihnCheckTest, D8BansAreUnconditionalAcrossSurfaces) {
  // Both migrations are finished, so the allowlists are empty: the bans
  // fire even at the former definition sites (the solver translation unit
  // and the deleted header's old home) and nothing can quietly revive a
  // retired surface.
  const std::string content = ReadFixture("d8_drift_bad.cc");
  for (const char* rel : {"src/fabric/max_min.cc", "src/diagnose/tools.cc"}) {
    EXPECT_EQ(CountRule(CheckFile(rel, content), "D8:api-drift"), 2u) << rel;
  }
}

TEST(MihnCheckTest, D8FiresOnOwningClockConstructions) {
  const auto findings = Check("d8_clock_bad.cc");
  EXPECT_EQ(CountRule(findings, "D8:owned-clock"), 3u);
  EXPECT_EQ(findings.size(), 3u);
}

TEST(MihnCheckTest, D8AllowsInjectedClocksTypePositionsAndSuppression) {
  EXPECT_TRUE(Check("d8_clock_good.cc").empty());
}

TEST(MihnCheckTest, D8OwnedClockExemptsWrapperDefinitionSites) {
  // The owning wrappers have to construct themselves somewhere, and the
  // equivalence test deliberately exercises them.
  const std::string content = ReadFixture("d8_clock_bad.cc");
  EXPECT_TRUE(CheckFile("src/host/host_network.cc", content).empty());
  EXPECT_TRUE(CheckFile("tests/host/host_network_test.cc", content).empty());
}

TEST(MihnCheckTest, D9FiresOnUnguardedMembersOfAnnotatedClass) {
  // Two in the core::Mutex monitor, one in the core::SyncMutex monitor (a
  // SyncMutex member opts a class in exactly like Mutex).
  const auto findings = Check("d9_guarded_bad.h");
  EXPECT_EQ(CountRule(findings, "D9:guarded-by"), 3u);
  EXPECT_EQ(findings.size(), 3u);
}

TEST(MihnCheckTest, D9ExemptsConstAtomicSuppressedAndUnannotated) {
  EXPECT_TRUE(Check("d9_guarded_good.h").empty());
}

TEST(MihnCheckTest, RulesFilterLimitsFamilies) {
  const std::string content = ReadFixture("d1_unordered_bad.cc");
  Options only_d4;
  only_d4.rules = {"D4"};
  EXPECT_TRUE(CheckFile("d1_unordered_bad.cc", content, only_d4).empty());
  Options only_d1;
  only_d1.rules = {"D1"};
  EXPECT_EQ(CheckFile("d1_unordered_bad.cc", content, only_d1).size(), 1u);
}

// -- D6: layering over the mini include trees --------------------------------

Options D6Options() {
  Options options;
  options.rules = {"D6"};
  options.layering_file = std::string(MIHN_CHECK_TESTDATA_DIR) + "/d6/layering.txt";
  return options;
}

std::vector<Finding> CheckD6Tree(const std::string& tree) {
  return CheckTree(std::string(MIHN_CHECK_TESTDATA_DIR) + "/d6/" + tree, {"src"},
                   D6Options());
}

TEST(MihnCheckTest, D6AcceptsDownwardIncludes) {
  EXPECT_TRUE(CheckD6Tree("clean").empty());
}

TEST(MihnCheckTest, D6FiresOnUpwardInclude) {
  const auto findings = CheckD6Tree("upward");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "D6:layering");
  EXPECT_EQ(findings[0].file, "src/core/base.h");
  EXPECT_NE(findings[0].message.find("upward include"), std::string::npos);
}

TEST(MihnCheckTest, D6FiresOnIncludeCycle) {
  const auto findings = CheckD6Tree("cycle");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "D6:include-cycle");
  EXPECT_NE(findings[0].message.find("->"), std::string::npos);
}

TEST(MihnCheckTest, D6FiresOnUndeclaredModule) {
  const auto findings = CheckD6Tree("unknown");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "D6:layering");
  EXPECT_NE(findings[0].message.find("src/mystery"), std::string::npos);
}

TEST(MihnCheckTest, D6HonorsSuppression) {
  EXPECT_TRUE(CheckD6Tree("suppressed").empty());
}

TEST(MihnCheckTest, D6ReportsUnreadableManifest) {
  Options options;
  options.rules = {"D6"};
  options.layering_file = std::string(MIHN_CHECK_TESTDATA_DIR) + "/d6/no_such_manifest.txt";
  const auto findings =
      CheckTree(std::string(MIHN_CHECK_TESTDATA_DIR) + "/d6/clean", {"src"}, options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("unreadable"), std::string::npos);
}

TEST(MihnCheckTest, LayeringManifestMatchesSourceTree) {
  // The real manifest and the real src/ must agree in both directions:
  // a module missing from the manifest would dodge D6, and a stale entry
  // would let dead layers linger.
  const std::string root = MIHN_CHECK_REPO_ROOT;
  const Layering layering = LoadLayering(root + "/tools/mihn_check/layering.txt");
  ASSERT_TRUE(layering.ok());
  const std::set<std::string> declared(layering.modules.begin(), layering.modules.end());
  std::set<std::string> present;
  for (const auto& entry : std::filesystem::directory_iterator(root + "/src")) {
    if (entry.is_directory()) {
      present.insert(entry.path().filename().string());
    }
  }
  EXPECT_EQ(declared, present);
}

TEST(MihnCheckTest, FormatFindingsSummarizes) {
  EXPECT_NE(FormatFindings({}).find("clean"), std::string::npos);
  const auto findings = Check("d5_header_bad.h");
  const std::string report = FormatFindings(findings);
  EXPECT_NE(report.find("d5_header_bad.h:"), std::string::npos);
  EXPECT_NE(report.find("2 unsuppressed"), std::string::npos);
}

}  // namespace
}  // namespace mihn::check
