// Fixture: D1 must fire on an unannotated unordered container.
#include <string>
#include <unordered_map>

namespace fixture {

int CountThings() {
  std::unordered_map<std::string, int> counts;
  counts["a"] = 1;
  int total = 0;
  for (const auto& [key, value] : counts) {
    total += value;
  }
  return total;
}

}  // namespace fixture
