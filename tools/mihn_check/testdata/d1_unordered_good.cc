// Fixture: ordered containers and an annotated unordered one are clean.
// A comment merely mentioning std::unordered_map must not fire either.
#include <map>
#include <string>
#include <unordered_map>

namespace fixture {

int Probe(const std::string& key) {
  std::map<std::string, int> sorted;
  // mihn-check: unordered-ok(membership probe only; iteration never observes order)
  std::unordered_map<std::string, int> probe;
  std::unordered_set<int>* inline_set = nullptr;  // mihn-check: unordered-ok(same-line suppression form)
  probe[key] = 1;
  sorted[key] = 2;
  return static_cast<int>(sorted.count(key) + probe.count(key)) + (inline_set != nullptr ? 1 : 0);
}

}  // namespace fixture
