// Fixture: ordered containers and an annotated unordered one are clean.
// A comment merely mentioning std::unordered_map must not fire either.
#include <map>
#include <string>
#include <unordered_map>

namespace fixture {

std::map<std::string, int> g_sorted;
// mihn-check: unordered-ok(membership probe only; iteration never observes order)
std::unordered_map<std::string, int> g_probe;

std::unordered_set<int>* g_inline = nullptr;  // mihn-check: unordered-ok(same-line suppression form)

}  // namespace fixture
