// Fixture: D2 must fire on each nondeterministic randomness/time source.
#include <chrono>
#include <cstdlib>

namespace fixture {

int Draw() {
  return std::rand() % 6;
}

long NowNanos() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace fixture
