// Fixture: annotated nondeterminism is allowed; prose mentioning
// std::rand or system_clock must not fire.

namespace fixture {

unsigned SeedFromEnvironment() {
  // mihn-check: nondet-ok(one-time seed harvest at process start, logged for replay)
  return static_cast<unsigned>(time(nullptr));
}

}  // namespace fixture
