// Fixture: D3 must fire on raw double parameters whose names imply units.

#ifndef MIHN_D3_UNITS_BAD_H_
#define MIHN_D3_UNITS_BAD_H_

namespace fixture {

class LinkConfigurator {
 public:
  void SetCapacity(double gbps);
  void SetBaseDelay(double delay_ns);
  void SetBudget(double bytes, int priority);
};

}  // namespace fixture

#endif  // MIHN_D3_UNITS_BAD_H_
