// Fixture: strong unit types, dimensionless doubles, unit-named struct
// members (not parameters), and an annotated legacy double are all clean.

#ifndef MIHN_D3_UNITS_GOOD_H_
#define MIHN_D3_UNITS_GOOD_H_

namespace fixture {

class Bandwidth;
class TimeNs;

struct Snapshot {
  double rate_bps = 0.0;  // Member, not a parameter: telemetry views stay POD.
};

class LinkConfigurator {
 public:
  void SetCapacity(Bandwidth bw);
  void SetBaseDelay(TimeNs delay);
  void SetWeight(double weight);
  // mihn-check: units-ok(wire-format shim; converts to Bandwidth on entry)
  void SetCapacityLegacy(double gbps);
};

}  // namespace fixture

#endif  // MIHN_D3_UNITS_GOOD_H_
