// Fixture: D4 must fire on float types and on ==/!= against float literals.

namespace fixture {

float Halve(double x) {
  return static_cast<float>(x / 2.0);
}

bool AtHalf(double x) {
  return x == 0.5;
}

bool NotOne(double x) {
  return 1.0 != x;
}

}  // namespace fixture
