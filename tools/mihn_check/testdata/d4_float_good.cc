// Fixture: doubles, tolerance comparisons, annotated exact equality, and
// integer ==/!= comparisons are all clean. (A comment saying x == 1.5 is
// fine too.)
#include <cmath>

namespace fixture {

// mihn-check: float-ok(GPU interop buffer requires 32-bit storage)
float g_gpu_scratch = 0.0F;

bool NearHalf(double x) {
  return std::abs(x - 0.5) < 1e-9;
}

bool ExactlyDrained(double weight) {
  return weight == 0.0;  // mihn-check: float-eq-ok(exact zero is the drained sentinel)
}

bool IsDefaultCount(int n) {
  return n == 64;
}

}  // namespace fixture
