// Fixture: doubles, tolerance comparisons, annotated exact equality, and
// integer ==/!= comparisons are all clean. (A comment saying x == 1.5 is
// fine too.)
#include <cmath>

namespace fixture {

// Two suppressions can share one line when a declaration trips two rules.
// mihn-check: float-ok(GPU interop buffer requires 32-bit storage) mihn-check: mutable-ok(single-threaded GPU shim scratch)
float g_gpu_scratch = 0.0F;

bool NearHalf(double x) {
  return std::abs(x - 0.5) < 1e-9;
}

bool ExactlyDrained(double weight) {
  return weight == 0.0;  // mihn-check: float-eq-ok(exact zero is the drained sentinel)
}

bool IsDefaultCount(int n) {
  return n == 64;
}

}  // namespace fixture
