// Fixture: D5 must fire on a guard that does not match the path and on
// `using namespace` in a header.

#ifndef SOME_WRONG_GUARD_H
#define SOME_WRONG_GUARD_H

#include <string>

using namespace std;

namespace fixture {

string Name();

}  // namespace fixture

#endif  // SOME_WRONG_GUARD_H
