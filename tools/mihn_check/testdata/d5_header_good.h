// Fixture: path-derived include guard, fully qualified names: clean.

#ifndef MIHN_D5_HEADER_GOOD_H_
#define MIHN_D5_HEADER_GOOD_H_

#include <string>

namespace fixture {

std::string Name();

}  // namespace fixture

#endif  // MIHN_D5_HEADER_GOOD_H_
