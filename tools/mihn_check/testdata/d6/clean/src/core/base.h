#ifndef MIHN_D6_CLEAN_CORE_BASE_H_
#define MIHN_D6_CLEAN_CORE_BASE_H_

namespace fixture {
inline int Base() { return 1; }
}  // namespace fixture

#endif  // MIHN_D6_CLEAN_CORE_BASE_H_
