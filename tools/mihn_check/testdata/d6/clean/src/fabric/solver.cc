#include "src/sim/engine.h"

namespace fixture {
int Solver() { return Engine() + 1; }
}  // namespace fixture
