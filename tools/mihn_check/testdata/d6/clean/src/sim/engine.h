#ifndef MIHN_D6_CLEAN_SIM_ENGINE_H_
#define MIHN_D6_CLEAN_SIM_ENGINE_H_

#include "src/core/base.h"

namespace fixture {
inline int Engine() { return Base() + 1; }
}  // namespace fixture

#endif  // MIHN_D6_CLEAN_SIM_ENGINE_H_
