#ifndef MIHN_D6_CYCLE_SIM_ALPHA_H_
#define MIHN_D6_CYCLE_SIM_ALPHA_H_

#include "src/sim/beta.h"

#endif  // MIHN_D6_CYCLE_SIM_ALPHA_H_
