#ifndef MIHN_D6_CYCLE_SIM_BETA_H_
#define MIHN_D6_CYCLE_SIM_BETA_H_

#include "src/sim/alpha.h"

#endif  // MIHN_D6_CYCLE_SIM_BETA_H_
