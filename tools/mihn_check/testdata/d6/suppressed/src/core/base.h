#ifndef MIHN_D6_SUPPRESSED_CORE_BASE_H_
#define MIHN_D6_SUPPRESSED_CORE_BASE_H_

// mihn-check: layering-ok(transitional: moves down next refactor)
#include "src/sim/engine.h"

namespace fixture {
inline int Base() { return Engine(); }
}  // namespace fixture

#endif  // MIHN_D6_SUPPRESSED_CORE_BASE_H_
