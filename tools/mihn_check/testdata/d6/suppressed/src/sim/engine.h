#ifndef MIHN_D6_SUPPRESSED_SIM_ENGINE_H_
#define MIHN_D6_SUPPRESSED_SIM_ENGINE_H_

namespace fixture {
inline int Engine() { return 2; }
}  // namespace fixture

#endif  // MIHN_D6_SUPPRESSED_SIM_ENGINE_H_
