#ifndef MIHN_D6_UNKNOWN_MYSTERY_WIDGET_H_
#define MIHN_D6_UNKNOWN_MYSTERY_WIDGET_H_

namespace fixture {
inline int Widget() { return 3; }
}  // namespace fixture

#endif  // MIHN_D6_UNKNOWN_MYSTERY_WIDGET_H_
