#ifndef MIHN_D6_UPWARD_CORE_BASE_H_
#define MIHN_D6_UPWARD_CORE_BASE_H_

#include "src/sim/engine.h"

namespace fixture {
inline int Base() { return Engine(); }
}  // namespace fixture

#endif  // MIHN_D6_UPWARD_CORE_BASE_H_
