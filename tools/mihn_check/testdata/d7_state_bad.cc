// Fixture: hidden mutable state in every position D7 polices — namespace
// scope, static locals, and static data members.
#include <cstdint>
#include <string>

namespace fixture {

int g_solve_count = 0;            // BAD: namespace-scope mutable state.
static std::string g_last_error;  // BAD: namespace-scope mutable state.

const int kTableSize = 64;  // OK: const.

int NextId() {
  static int counter = 0;  // BAD: mutable static local.
  return ++counter;
}

class Registry {
 public:
  static int live_instances;         // BAD: mutable static data member.
  static constexpr int kShards = 4;  // OK: constexpr.
};

}  // namespace fixture
