// Fixture: constants, plain locals and suppressed singletons are all clean
// under D7.
#include <cstdint>

namespace fixture {

const int kWindow = 256;
constexpr double kEpsilon = 1e-9;
inline constexpr int kShards = 4;

// mihn-check: mutable-ok(process-wide interning table, single-threaded by contract)
int g_intern_count = 0;

int Accumulate(int n) {
  int total = 0;  // OK: plain local.
  for (int i = 0; i < n; ++i) {
    total += i;
  }
  return total;
}

int Sequence() {
  // mihn-check: mutable-ok(deterministic id source, reset between trials)
  static int next = 0;
  return ++next;
}

class Limits {
 public:
  static constexpr int kMax = 1024;  // OK: constexpr member.
  // mihn-check: mutable-ok(debug-only counter, excluded from trials)
  static int debug_hits;
};

}  // namespace fixture
