// Fixture: HostNetwork constructed through the owning (private-clock)
// wrappers instead of the clock-injection constructors D8 requires.
#include <memory>

namespace fixture {

void Owning() {
  mihn::HostNetwork plain;                // BAD: default-constructs a private clock.
  mihn::HostNetwork configured(Quiet());  // BAD: first argument is not a Simulation.
  auto boxed = std::make_unique<mihn::HostNetwork>(Quiet());  // BAD: same, via make_unique.
}

}  // namespace fixture
