// Fixture: clock-injection constructions, type-position mentions, and a
// justified owning construction under suppression.
#include <memory>

namespace fixture {

void Injected(mihn::HostNetwork& borrowed, mihn::HostNetwork* spare) {
  mihn::sim::Simulation sim;
  mihn::HostNetwork host(sim, Quiet());
  mihn::HostNetwork braced{sim};
  auto boxed = std::make_unique<mihn::HostNetwork>(sim, Quiet());
  using Preset = mihn::HostNetwork::Preset;  // Qualified name, not a construction.
  // mihn-check: clock-ok(downstream-style owning construction exercised by the self-test)
  mihn::HostNetwork owning;
}

}  // namespace fixture
