// Fixture: both deprecated surfaces D8 bans — the old diagnose
// free-function header and the SolveMaxMin free function.
#include "src/diagnose/tools.h"  // BAD: banned include.

#include <vector>

namespace fixture {

std::vector<double> Allocate() {
  return mihn::fabric::SolveMaxMin({}, {});  // BAD: banned symbol.
}

}  // namespace fixture
