// Fixture: the reference solver is a distinct symbol (not drift), and a
// justified legacy use can be suppressed.
#include <vector>

// mihn-check: drift-ok(migration staging area exercised by the self-test)
#include "src/diagnose/tools.h"

namespace fixture {

std::vector<double> Oracle() {
  // The oracle keeps its own name; only the deprecated production entry
  // point SolveMaxMin (mentioned here in a comment only) is banned.
  return mihn::fabric::SolveMaxMinReference({}, {});
}

}  // namespace fixture
