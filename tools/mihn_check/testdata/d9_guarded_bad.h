// Fixture: a class that opted into thread-safety annotations but left
// mutable members unguarded.
#ifndef MIHN_D9_GUARDED_BAD_H_
#define MIHN_D9_GUARDED_BAD_H_

#include <cstdint>
#include <vector>

#include "src/core/mutex.h"
#include "src/core/thread_annotations.h"

namespace fixture {

class Ring {
 public:
  void Push(int v) MIHN_EXCLUDES(mu_) {
    mihn::core::MutexLock lock(&mu_);
    buf_.push_back(v);
    ++writes_;
  }

 private:
  mutable mihn::core::Mutex mu_;
  std::vector<int> buf_;    // BAD: no MIHN_GUARDED_BY.
  uint64_t writes_ = 0;     // BAD: no MIHN_GUARDED_BY.
  const int capacity_ = 8;  // OK: const.
};

// A real-lock monitor (core::SyncMutex) opts in exactly like the no-op one.
class Pool {
 private:
  mihn::core::SyncMutex mu_;  // OK: the capability itself.
  int pending_ = 0;           // BAD: no MIHN_GUARDED_BY.
};

}  // namespace fixture

#endif  // MIHN_D9_GUARDED_BAD_H_
