// Fixture: a fully annotated monitor (guarded, const, constexpr, atomic and
// suppressed members) plus an unannotated class D9 leaves alone.
#ifndef MIHN_D9_GUARDED_GOOD_H_
#define MIHN_D9_GUARDED_GOOD_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/core/mutex.h"
#include "src/core/thread_annotations.h"
#include "src/core/worker_pool.h"

namespace fixture {

class Ring {
 public:
  void Push(int v) MIHN_EXCLUDES(mu_) {
    mihn::core::MutexLock lock(&mu_);
    buf_.push_back(v);
    ++writes_;
  }

 private:
  mutable mihn::core::Mutex mu_;
  std::vector<int> buf_ MIHN_GUARDED_BY(mu_);
  uint64_t writes_ MIHN_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> drops_{0};   // OK: atomic.
  const int capacity_ = 8;           // OK: const.
  static constexpr int kShards = 4;  // OK: constexpr.
  // mihn-check: guarded-ok(reader-owned scratch, never shared across threads)
  std::vector<int> scratch_;
};

// A real-lock monitor: SyncMutex (and the std::mutex it wraps) is the
// capability itself, exempt like core::Mutex; guarded state still annotates.
class Pool {
 public:
  void Bump() MIHN_EXCLUDES(mu_) {
    mihn::core::SyncMutexLock lock(&mu_);
    ++rounds_;
  }

 private:
  mihn::core::SyncMutex mu_;
  std::mutex raw_mu_;  // OK: a lock, not guarded state.
  uint64_t rounds_ MIHN_GUARDED_BY(mu_) = 0;
};

// No mutex, no annotations: D9 does not apply.
class Plain {
 public:
  int value() const { return value_; }

 private:
  int value_ = 0;
};

}  // namespace fixture

#endif  // MIHN_D9_GUARDED_GOOD_H_
